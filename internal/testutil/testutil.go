package testutil

import (
	"fmt"
	"math/rand"
	"testing"

	"metricindex/internal/core"
)

// Searcher is the query subset of core.Index, satisfied by every index.
type Searcher interface {
	RangeSearch(q core.Object, r float64) ([]int, error)
	KNNSearch(q core.Object, k int) ([]core.Neighbor, error)
}

// VectorDataset builds a deterministic dataset of n uniform d-dimensional
// vectors in [0, span) under the given metric.
func VectorDataset(n, dim int, span float64, m core.Metric, seed int64) *core.Dataset {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]core.Object, n)
	for i := range objs {
		v := make(core.Vector, dim)
		for d := range v {
			v[d] = rng.Float64() * span
		}
		objs[i] = v
	}
	return core.NewDataset(core.NewSpace(m), objs)
}

// Vector32Dataset builds a deterministic dataset of n uniform float32
// vectors in [0, span) under the given metric (which compares them
// through the widening float32 kernels).
func Vector32Dataset(n, dim int, span float64, m core.Metric, seed int64) *core.Dataset {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]core.Object, n)
	for i := range objs {
		v := make(core.Vector32, dim)
		for d := range v {
			v[d] = float32(rng.Float64() * span)
		}
		objs[i] = v
	}
	return core.NewDataset(core.NewSpace(m), objs)
}

// IntVectorDataset builds a deterministic dataset of n integer vectors in
// [0, span) under the discrete L∞ metric.
func IntVectorDataset(n, dim, span int, seed int64) *core.Dataset {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]core.Object, n)
	for i := range objs {
		v := make(core.IntVector, dim)
		for d := range v {
			v[d] = int32(rng.Intn(span))
		}
		objs[i] = v
	}
	return core.NewDataset(core.NewSpace(core.IntLInf{}), objs)
}

// WordDataset builds a deterministic dataset of n short pseudo-words under
// edit distance.
func WordDataset(n int, seed int64) *core.Dataset {
	rng := rand.New(rand.NewSource(seed))
	letters := "abcdefgh"
	objs := make([]core.Object, n)
	for i := range objs {
		l := 2 + rng.Intn(8)
		b := make([]byte, l)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		objs[i] = core.Word(string(b))
	}
	return core.NewDataset(core.NewSpace(core.Edit{}), objs)
}

// RandomQuery synthesizes a query object resembling the dataset's objects.
func RandomQuery(ds *core.Dataset, seed int64) core.Object {
	rng := rand.New(rand.NewSource(seed))
	proto := ds.Object(ds.LiveIDs()[rng.Intn(ds.Count())])
	switch v := proto.(type) {
	case core.Vector:
		q := v.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * q[d] * 0.1
		}
		return q
	case core.Vector32:
		q := v.Clone()
		for d := range q {
			q[d] += float32(rng.NormFloat64()) * q[d] * 0.1
		}
		return q
	case core.IntVector:
		q := v.Clone()
		for d := range q {
			q[d] += int32(rng.Intn(11) - 5)
			if q[d] < 0 {
				q[d] = 0
			}
		}
		return q
	case core.Word:
		s := []byte(string(v))
		if len(s) > 1 {
			s[rng.Intn(len(s))] = byte('a' + rng.Intn(8))
		}
		return core.Word(string(s))
	default:
		return proto
	}
}

// CheckRange asserts the index's MRQ answer equals brute force.
func CheckRange(t *testing.T, idx Searcher, ds *core.Dataset, q core.Object, r float64) {
	t.Helper()
	want := core.BruteForceRange(ds, q, r)
	got, err := idx.RangeSearch(q, r)
	if err != nil {
		t.Fatalf("RangeSearch(r=%v): %v", r, err)
	}
	if !equalInts(got, want) {
		t.Fatalf("RangeSearch(r=%v) mismatch:\n got %v\nwant %v", r, got, want)
	}
}

// CheckKNN asserts the index's MkNNQ answer matches brute force in both
// membership distance and count. Because distance ties can be broken
// either way, it compares the multiset of distances, not ids.
func CheckKNN(t *testing.T, idx Searcher, ds *core.Dataset, q core.Object, k int) {
	t.Helper()
	want := core.BruteForceKNN(ds, q, k)
	got, err := idx.KNNSearch(q, k)
	if err != nil {
		t.Fatalf("KNNSearch(k=%d): %v", k, err)
	}
	if len(got) != len(want) {
		t.Fatalf("KNNSearch(k=%d) returned %d results, want %d\n got %v\nwant %v",
			k, len(got), len(want), got, want)
	}
	const eps = 1e-9
	for i := range got {
		if diff := got[i].Dist - want[i].Dist; diff > eps || diff < -eps {
			t.Fatalf("KNNSearch(k=%d) distance %d: got %v want %v\n got %v\nwant %v",
				k, i, got[i].Dist, want[i].Dist, got, want)
		}
	}
	// Every returned object must actually be at its claimed distance.
	for _, nb := range got {
		o := ds.Object(nb.ID)
		if o == nil {
			t.Fatalf("KNNSearch(k=%d) returned deleted object %d", k, nb.ID)
		}
		if d := ds.Space().Metric().Distance(q, o); d != nb.Dist {
			t.Fatalf("KNNSearch(k=%d) object %d claims distance %v, actual %v", k, nb.ID, nb.Dist, d)
		}
	}
}

// Radii returns a spread of query radii from tiny to dataset-spanning,
// derived from sampled distances.
func Radii(ds *core.Dataset, q core.Object) []float64 {
	m := ds.Space().Metric()
	var maxD float64
	ids := ds.LiveIDs()
	for i := 0; i < len(ids); i += len(ids)/64 + 1 {
		if d := m.Distance(q, ds.Object(ids[i])); d > maxD {
			maxD = d
		}
	}
	return []float64{0, maxD * 0.05, maxD * 0.2, maxD * 0.5, maxD * 1.1}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DescribeObjects formats a few objects for failure messages.
func DescribeObjects(ds *core.Dataset, ids []int) string {
	s := ""
	for i, id := range ids {
		if i == 8 {
			s += " …"
			break
		}
		s += fmt.Sprintf(" %d:%v", id, ds.Object(id))
	}
	return s
}
