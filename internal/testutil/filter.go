package testutil

import (
	"math/rand"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/plan"
)

// Filtered-search equivalence: the metamorphic relation every index
// family must preserve is that a filtered query answers exactly the
// brute-force filter-then-scan — whichever of the three strategies
// (pre, probe, post) executes it, and whichever one the planner picks.
// CheckFilterEquivalence drives all of them against one index build
// over a predicate set spanning the whole selectivity range.

// AttachTestAttrs gives every live object a deterministic attribute bag
// shaped for predicate testing: a three-valued category with skewed
// marginals (~10% "rare", ~30% "mid", ~60% "common"), a level int in
// 0..9, a score float in [0, 100), and a sparse "hot" tag (~25%).
func AttachTestAttrs(tb testing.TB, ds *core.Dataset, seed int64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, id := range ds.LiveIDs() {
		a := core.Attrs{
			"level": core.IntValue(int64(rng.Intn(10))),
			"score": core.FloatValue(rng.Float64() * 100),
		}
		switch r := rng.Float64(); {
		case r < 0.10:
			a["category"] = core.StringValue("rare")
		case r < 0.40:
			a["category"] = core.StringValue("mid")
		default:
			a["category"] = core.StringValue("common")
		}
		if rng.Float64() < 0.25 {
			a["tags"] = core.TagsValue("hot")
		}
		if err := ds.SetAttrs(id, a); err != nil {
			tb.Fatalf("SetAttrs(%d): %v", id, err)
		}
	}
}

// FilterPredicates is the harness's predicate battery: selectivities
// from zero (missing field, impossible range) through a few percent up
// to near-total, covering every leaf type (string equality, numeric
// comparison on ints and floats, IN lists, tag membership) and both
// connectives.
func FilterPredicates() []string {
	return []string{
		`category = "rare" AND level >= 8`,
		`category = "rare"`,
		`tags = "hot"`,
		`category IN ("rare", "mid")`,
		`score < 50`,
		`level >= 2 OR category = "rare"`,
		`(category = "common" AND score >= 25) OR tags = "hot"`,
		`level != 0`,
		`level >= 999`,
		`nosuch = 1`,
	}
}

// CheckFilterEquivalence attaches test attrs to ed's dataset, then for
// every predicate in the battery and every probe query requires:
//
//	(a) each forced strategy — pre, probe, post — answers MRQ and MkNNQ
//	    exactly like the brute-force filter-then-scan (on an index
//	    without probe-filter support, forced probe degrades to post and
//	    must still be exact);
//	(b) the planner's own choice over a histogram fed from the same
//	    bags agrees too, whatever strategy it picked.
//
// The index must already be built over ed.DS; attrs never change the
// metric, so attaching them after the build is sound.
func CheckFilterEquivalence(t *testing.T, ed EquivDataset, idx core.Index) {
	t.Helper()
	ds := ed.DS
	AttachTestAttrs(t, ds, 42)
	stats := plan.NewStats()
	for _, id := range ds.LiveIDs() {
		stats.Observe(ds.Attrs(id))
	}

	type probe struct {
		q     core.Object
		radii []float64
	}
	probes := make([]probe, 3)
	for qs := range probes {
		q := RandomQuery(ds, int64(qs))
		probes[qs] = probe{q: q, radii: Radii(ds, q)}
	}
	ks := []int{1, 5, 20}

	for _, src := range FilterPredicates() {
		p, err := plan.Parse(src)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", ed.Name, src, err)
		}
		sel := stats.Selectivity(p)
		for qs, pr := range probes {
			for _, r := range pr.radii {
				want := bruteFilterRange(ds, p, pr.q, r)
				for _, st := range plan.Strategies {
					got, err := plan.ExecRange(ds, idx, p, pr.q, r, st)
					if err != nil {
						t.Fatalf("%s: %q: ExecRange(%v, r=%v): %v", ed.Name, src, st, r, err)
					}
					if !equalInts(got, want) {
						t.Fatalf("%s: %q: query %d MRQ(r=%v) via %v:\n got  %v\n want %v",
							ed.Name, src, qs, r, st, got, want)
					}
				}
				got, strat, err := plan.RunRange(ds, idx, stats, p, pr.q, r)
				if err != nil {
					t.Fatalf("%s: %q: RunRange: %v", ed.Name, src, err)
				}
				if !equalInts(got, want) {
					t.Fatalf("%s: %q: query %d planner MRQ(r=%v) chose %v:\n got  %v\n want %v",
						ed.Name, src, qs, r, strat, got, want)
				}
			}
			for _, k := range ks {
				want := bruteFilterKNN(ds, p, pr.q, k)
				for _, st := range plan.Strategies {
					got, err := plan.ExecKNN(ds, idx, p, pr.q, k, st, sel)
					if err != nil {
						t.Fatalf("%s: %q: ExecKNN(%v, k=%d): %v", ed.Name, src, st, k, err)
					}
					if err := sameNeighbors(got, want); err != nil {
						t.Fatalf("%s: %q: query %d MkNNQ(k=%d) via %v: %v\n got  %v\n want %v",
							ed.Name, src, qs, k, st, err, got, want)
					}
				}
				got, strat, err := plan.RunKNN(ds, idx, stats, p, pr.q, k)
				if err != nil {
					t.Fatalf("%s: %q: RunKNN: %v", ed.Name, src, err)
				}
				if err := sameNeighbors(got, want); err != nil {
					t.Fatalf("%s: %q: query %d planner MkNNQ(k=%d) chose %v: %v",
						ed.Name, src, qs, k, strat, err)
				}
			}
		}
	}
}

// bruteFilterRange is the specification: evaluate the predicate on
// every live bag, compute distances only for matches, ids ascending.
func bruteFilterRange(ds *core.Dataset, p *plan.Predicate, q core.Object, r float64) []int {
	m := ds.Space().Metric()
	var res []int
	for _, id := range ds.LiveIDs() {
		if p.Eval(ds.Attrs(id)) && m.Distance(q, ds.Object(id)) <= r {
			res = append(res, id)
		}
	}
	return res
}

// bruteFilterKNN is the kNN specification, sharing the library's
// (distance, id) total order via the same heap the indexes use.
func bruteFilterKNN(ds *core.Dataset, p *plan.Predicate, q core.Object, k int) []core.Neighbor {
	m := ds.Space().Metric()
	h := core.NewKNNHeap(k)
	for _, id := range ds.LiveIDs() {
		if p.Eval(ds.Attrs(id)) {
			h.Push(id, m.Distance(q, ds.Object(id)))
		}
	}
	return h.Result()
}
