// Package testutil provides the shared correctness machinery behind the
// index test suites: deterministic small datasets of every object type
// (vectors, integer vectors, words), comparators that check an index's
// answers against the brute-force baseline, a ConcurrencyProbe metric
// that asserts parallel builds respect their Workers budget, and the
// metamorphic equivalence harness CheckEquivalence.
//
// CheckEquivalence is the proof obligation every index family adopts:
// two builds of the same algorithm (sequential and parallel — or a
// fresh build and its snapshot round trip, in internal/persist's tests)
// must answer every MRQ and MkNNQ identically, both must match a linear
// scan, and answers must be invariant under insert-then-delete round
// trips.
package testutil
