//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in. The
// detector instruments every memory access with calls that allocate, so
// testing.AllocsPerRun budgets are meaningless under -race; allocation
// regression tests consult this to skip themselves.
const RaceEnabled = true
