// Package bkt implements the Burkhard-Keller Tree (§4.1), the classic
// pivot-based tree for *discrete* distance functions: every internal node
// holds a pivot, and objects at distance i from the pivot descend into the
// i-th subtree. Pivots are selected at random per subtree (the paper keeps
// this randomness; using the shared pivot set per level instead would turn
// BKT into FQT). The random choice is derived by hashing the subtree's own
// identifiers with the seed, so it depends only on the subtree's content —
// never on the order subtrees are built in — which makes construction
// deterministic and lets sibling subtrees build concurrently with an
// identical result.
//
// Following §4.1, only object identifiers live in the tree; object values
// stay in the dataset table. To avoid empty subtrees under large distance
// domains, each child covers a fixed-width range of distance values, with
// the range stored alongside the child.
package bkt

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"metricindex/internal/core"
)

// Options tunes construction.
type Options struct {
	// LeafCapacity is the bucket size below which a subtree stops
	// splitting. Default 16.
	LeafCapacity int
	// MaxChildren caps a node's fanout; the bucket width is chosen as
	// ceil(domain/MaxChildren). Default 64.
	MaxChildren int
	// Seed drives random pivot selection.
	Seed int64
	// MaxDistance is the distance-domain upper bound (d+), used to size
	// buckets. Required.
	MaxDistance float64
	// Workers parallelizes construction node-level: the per-node pivot
	// distances and sibling subtrees above a size cutoff spread over a
	// pool of Workers goroutines shared by the whole build (a token
	// scheme, so total concurrency stays bounded however wide the tree
	// fans out). 0 or 1 builds sequentially, negative uses GOMAXPROCS.
	// The tree is identical either way.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.LeafCapacity <= 0 {
		o.LeafCapacity = 16
	}
	if o.MaxChildren <= 0 {
		o.MaxChildren = 64
	}
	if o.MaxDistance <= 0 {
		o.MaxDistance = 1
	}
	return o
}

// BKT is the Burkhard-Keller tree index.
type BKT struct {
	ds   *core.Dataset
	opts Options
	root *node
	size int
	// tokens bounds build parallelism to Workers total goroutines across
	// the whole recursion; nil builds sequentially.
	tokens *core.TokenPool
}

// node is either a leaf (ids != nil precisely when it has no pivot) or an
// internal node with a pivot and bucketed children.
type node struct {
	// Leaf state.
	ids []int32
	// Internal state.
	pivotID   int32
	pivotVal  core.Object
	pivotLive bool // false once the pivot object was deleted from the dataset
	width     float64
	children  map[int]*node
}

func (n *node) leaf() bool { return n.children == nil && n.pivotVal == nil }

// New builds a BKT over all live objects. The metric must be discrete.
func New(ds *core.Dataset, opts Options) (*BKT, error) {
	if !ds.Space().Metric().Discrete() {
		return nil, fmt.Errorf("bkt: metric %q is not discrete", ds.Space().Metric().Name())
	}
	opts = opts.withDefaults()
	t := &BKT{ds: ds, opts: opts, tokens: core.NewTokenPool(opts.Workers)}
	ids := make([]int32, 0, ds.Count())
	for _, id := range ds.LiveIDs() {
		ids = append(ids, int32(id))
	}
	t.size = len(ids)
	t.root = t.build(ids)
	return t, nil
}

// pivotIndex picks the pivot as the identifier with the minimum seeded
// hash (min-hash over the subtree's id *set*, ties to the smaller id).
// The chosen pivot id is a function of the set alone — independent of
// slice ordering — so concurrent sibling builds, and leaf rebuilds
// whose ids arrived in insertion order, pick the same pivot a
// sequential fresh build over the same ids would. The returned value is
// that pivot's position in ids.
func pivotIndex(seed int64, ids []int32) int {
	best := 0
	bestH := ^uint64(0)
	for i, id := range ids {
		h := core.Mix64(uint64(seed) ^ 0x9e3779b97f4a7c15 ^ uint64(uint32(id)))
		if h < bestH || (h == bestH && id < ids[best]) {
			best, bestH = i, h
		}
	}
	return best
}

// build recursively partitions ids by distance to a randomly chosen pivot.
// With Workers > 1 the per-node pivot distances and sibling subtrees above
// core.ParallelNodeCutoff spread over the shared token pool — disjoint nodes and
// slots, so the tree is identical to the sequential build.
func (t *BKT) build(ids []int32) *node {
	if len(ids) <= t.opts.LeafCapacity {
		return &node{ids: ids}
	}
	// Random pivot from the subtree's own objects (§4.1).
	pi := pivotIndex(t.opts.Seed, ids)
	pid := ids[pi]
	pv := t.ds.Object(int(pid))
	rest := make([]int32, 0, len(ids)-1)
	rest = append(rest, ids[:pi]...)
	rest = append(rest, ids[pi+1:]...)

	n := &node{
		pivotID:   pid,
		pivotVal:  pv,
		pivotLive: true,
		width:     bucketWidth(t.opts.MaxDistance, t.opts.MaxChildren),
		children:  make(map[int]*node),
	}
	sp := t.ds.Space()
	par := t.tokens != nil && len(ids) >= core.ParallelNodeCutoff
	// Bucket index per object: the distance fill fans out over the token
	// pool; the bucket aggregation that follows is sequential over rest's
	// order, so bucket contents are order-identical either way.
	bs := make([]int, len(rest))
	fill := func(start, end int) {
		for i := start; i < end; i++ {
			bs[i] = int(sp.Distance(pv, t.ds.Object(int(rest[i]))) / n.width)
		}
	}
	if par {
		t.tokens.ChunkedFill(len(rest), fill)
	} else {
		fill(0, len(rest))
	}
	buckets := make(map[int][]int32)
	allSame := true
	for i, id := range rest {
		if bs[i] != bs[0] {
			allSame = false
		}
		buckets[bs[i]] = append(buckets[bs[i]], id)
	}
	if allSame && len(rest) > t.opts.LeafCapacity {
		// Degenerate split (e.g. many duplicates): stop here to guarantee
		// termination; the single child becomes a leaf.
		n.children[bs[0]] = &node{ids: buckets[bs[0]]}
		return n
	}
	var wg sync.WaitGroup
	for b, bucket := range buckets {
		child := &node{}
		n.children[b] = child
		if !par || !t.tokens.TryGo(&wg, func() { *child = *t.build(bucket) }) {
			*child = *t.build(bucket)
		}
	}
	wg.Wait()
	return n
}

func bucketWidth(maxD float64, maxChildren int) float64 {
	w := math.Ceil(maxD / float64(maxChildren))
	if w < 1 {
		w = 1
	}
	return w
}

// Name returns "BKT".
func (t *BKT) Name() string { return "BKT" }

// Len returns the number of indexed objects.
func (t *BKT) Len() int { return t.size }

// RangeSearch answers MRQ(q, r) by depth-first traversal, pruning child
// buckets whose distance range cannot intersect [d(q,p)−r, d(q,p)+r]
// (Lemma 1 restricted to the node's pivot).
func (t *BKT) RangeSearch(q core.Object, r float64) ([]int, error) {
	var res []int
	sp := t.ds.Space()
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			for _, id := range n.ids {
				if sp.Distance(q, t.ds.Object(int(id))) <= r {
					res = append(res, int(id))
				}
			}
			return
		}
		dq := sp.Distance(q, n.pivotVal)
		if n.pivotLive && dq <= r {
			res = append(res, int(n.pivotID))
		}
		for b, child := range n.children {
			lo := float64(b) * n.width
			hi := lo + n.width
			if dq+r < lo || dq-r > hi {
				continue
			}
			walk(child)
		}
	}
	walk(t.root)
	sort.Ints(res)
	return res, nil
}

// pqItem orders nodes by their lower-bound distance for best-first kNN.
type pqItem struct {
	n  *node
	lb float64
}

type nodePQ []pqItem

func (p nodePQ) Len() int                  { return len(p) }
func (p nodePQ) Less(i, j int) bool        { return p[i].lb < p[j].lb }
func (p nodePQ) Swap(i, j int)             { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x any)               { *p = append(*p, x.(pqItem)) }
func (p *nodePQ) Pop() any                 { old := *p; it := old[len(old)-1]; *p = old[:len(old)-1]; return it }
func (p *nodePQ) push(n *node, lb float64) { heap.Push(p, pqItem{n, lb}) }

// KNNSearch answers MkNNQ(q, k) by best-first traversal in ascending
// lower-bound order, with the radius tightened by verified objects (§4.1).
func (t *BKT) KNNSearch(q core.Object, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	h := core.NewKNNHeap(k)
	sp := t.ds.Space()
	pq := &nodePQ{}
	pq.push(t.root, 0)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.lb > h.Radius() {
			break
		}
		n := it.n
		if n.leaf() {
			for _, id := range n.ids {
				h.Push(int(id), sp.Distance(q, t.ds.Object(int(id))))
			}
			continue
		}
		dq := sp.Distance(q, n.pivotVal)
		if n.pivotLive {
			h.Push(int(n.pivotID), dq)
		}
		for b, child := range n.children {
			lo := float64(b) * n.width
			hi := lo + n.width
			lb := intervalDist(dq, lo, hi)
			if lb < it.lb {
				lb = it.lb
			}
			if lb <= h.Radius() {
				pq.push(child, lb)
			}
		}
	}
	return h.Result(), nil
}

// intervalDist is the distance from x to the interval [lo, hi].
func intervalDist(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}

// Insert descends by bucket and appends to a leaf, splitting it when it
// overflows.
func (t *BKT) Insert(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("bkt: insert of deleted object %d", id)
	}
	t.size++
	t.insertAt(t.root, id, o)
	return nil
}

func (t *BKT) insertAt(n *node, id int, o core.Object) {
	if n.leaf() {
		n.ids = append(n.ids, int32(id))
		if len(n.ids) > 2*t.opts.LeafCapacity {
			rebuilt := t.build(n.ids)
			*n = *rebuilt
		}
		return
	}
	b := int(t.ds.Space().Distance(n.pivotVal, o) / n.width)
	child, ok := n.children[b]
	if !ok {
		n.children[b] = &node{ids: []int32{int32(id)}}
		return
	}
	t.insertAt(child, id, o)
}

// Delete descends by bucket (computing the object's pivot distances) and
// removes the identifier; a deleted pivot keeps routing but stops being
// reported.
func (t *BKT) Delete(id int) error {
	o := t.ds.Object(id)
	if o == nil {
		return fmt.Errorf("bkt: delete needs the object still present in the dataset (id %d)", id)
	}
	if !t.deleteAt(t.root, id, o) {
		return fmt.Errorf("bkt: delete of unindexed object %d", id)
	}
	t.size--
	return nil
}

func (t *BKT) deleteAt(n *node, id int, o core.Object) bool {
	if n.leaf() {
		for i, x := range n.ids {
			if int(x) == id {
				n.ids[i] = n.ids[len(n.ids)-1]
				n.ids = n.ids[:len(n.ids)-1]
				return true
			}
		}
		return false
	}
	if n.pivotLive && int(n.pivotID) == id {
		n.pivotLive = false
		return true
	}
	b := int(t.ds.Space().Distance(n.pivotVal, o) / n.width)
	child, ok := n.children[b]
	if !ok {
		return false
	}
	return t.deleteAt(child, id, o)
}

// PageAccesses returns 0: BKT is an in-memory index.
func (t *BKT) PageAccesses() int64 { return 0 }

// ResetStats is a no-op.
func (t *BKT) ResetStats() {}

// MemBytes estimates the tree's resident size: node overhead plus stored
// identifiers (objects live in the dataset, not the tree).
func (t *BKT) MemBytes() int64 {
	var bytes int64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			bytes += int64(len(n.ids))*4 + 24
			return
		}
		bytes += 64 // pivot id, width, map header
		for _, c := range n.children {
			bytes += 16
			walk(c)
		}
	}
	walk(t.root)
	return bytes
}

// DiskBytes returns 0.
func (t *BKT) DiskBytes() int64 { return 0 }
