package bkt

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

func newIntBKT(t *testing.T, n int) (*BKT, *core.Dataset) {
	t.Helper()
	ds := testutil.IntVectorDataset(n, 4, 100, 7)
	idx, err := New(ds, Options{Seed: 3, MaxDistance: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, ds
}

func TestBKTRejectsContinuousMetric(t *testing.T) {
	ds := testutil.VectorDataset(20, 2, 10, core.L2{}, 1)
	if _, err := New(ds, Options{MaxDistance: 10}); err == nil {
		t.Fatal("BKT must reject continuous metrics")
	}
}

func TestBKTRangeMatchesBruteForce(t *testing.T) {
	idx, ds := newIntBKT(t, 400)
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 2, 10, 35, 120} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
	}
}

func TestBKTKNNMatchesBruteForce(t *testing.T) {
	idx, ds := newIntBKT(t, 400)
	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, k := range []int{1, 4, 25, 400} {
			testutil.CheckKNN(t, idx, ds, q, k)
		}
	}
}

func TestBKTWordsDataset(t *testing.T) {
	ds := testutil.WordDataset(300, 11)
	idx, err := New(ds, Options{Seed: 5, MaxDistance: 12})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for qs := int64(0); qs < 4; qs++ {
		q := testutil.RandomQuery(ds, qs)
		for _, r := range []float64{0, 1, 2, 4} {
			testutil.CheckRange(t, idx, ds, q, r)
		}
		testutil.CheckKNN(t, idx, ds, q, 6)
	}
}

func TestBKTInsertDelete(t *testing.T) {
	idx, ds := newIntBKT(t, 200)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.IntVector{int32(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range []float64{0, 5, 20, 120} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 17)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len = %d, want %d", idx.Len(), ds.Count())
	}
}

func TestBKTDeletePivotKeepsRouting(t *testing.T) {
	idx, ds := newIntBKT(t, 150)
	// Delete every object in turn until half are gone, including pivots.
	for id := 0; id < 75; id++ {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	q := testutil.RandomQuery(ds, 8)
	for _, r := range []float64{0, 10, 40} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 10)
}

func TestBKTDuplicateObjects(t *testing.T) {
	objs := make([]core.Object, 100)
	for i := range objs {
		objs[i] = core.IntVector{int32(i % 3), 1} // heavy duplication
	}
	ds := core.NewDataset(core.NewSpace(core.IntLInf{}), objs)
	idx, err := New(ds, Options{Seed: 1, MaxDistance: 3, LeafCapacity: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := core.IntVector{0, 1}
	testutil.CheckRange(t, idx, ds, q, 0)
	testutil.CheckRange(t, idx, ds, q, 1)
	testutil.CheckKNN(t, idx, ds, q, 50)
}

func TestBKTStats(t *testing.T) {
	idx, _ := newIntBKT(t, 100)
	if idx.PageAccesses() != 0 || idx.DiskBytes() != 0 {
		t.Fatal("BKT must report zero disk activity")
	}
	if idx.MemBytes() <= 0 {
		t.Fatal("BKT must report positive memory")
	}
	if idx.Name() != "BKT" {
		t.Fatalf("Name = %q", idx.Name())
	}
}
