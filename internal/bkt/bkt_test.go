package bkt

import (
	"fmt"
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

func newIntBKT(t *testing.T, n int) (*BKT, *core.Dataset) {
	t.Helper()
	ds := testutil.IntVectorDataset(n, 4, 100, 7)
	idx, err := New(ds, Options{Seed: 3, MaxDistance: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return idx, ds
}

func TestBKTRejectsContinuousMetric(t *testing.T) {
	ds := testutil.VectorDataset(20, 2, 10, core.L2{}, 1)
	if _, err := New(ds, Options{MaxDistance: 10}); err == nil {
		t.Fatal("BKT must reject continuous metrics")
	}
}

// TestBKTEquivalence runs the shared metamorphic harness: parallel build
// answers identical to sequential, both correct against a linear scan,
// and invariant under insert-then-delete round trips — on integer
// vectors and words.
func TestBKTEquivalence(t *testing.T) {
	for _, ed := range testutil.EquivDatasets(true, 400, 7) {
		build := func(ds *core.Dataset, workers int) (testutil.EquivIndex, error) {
			return New(ds, Options{Seed: 3, MaxDistance: ed.MaxDistance, Workers: workers})
		}
		testutil.CheckEquivalence(t, ed, build, testutil.EquivOptions{})
	}
}

func TestBKTDeleteThenInsertMixed(t *testing.T) {
	idx, ds := newIntBKT(t, 200)
	for id := 0; id < 200; id += 4 {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := ds.Insert(core.IntVector{int32(i), 50, 50, 50})
		if err := idx.Insert(id); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	q := testutil.RandomQuery(ds, 2)
	for _, r := range []float64{0, 5, 20, 120} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 17)
	if idx.Len() != ds.Count() {
		t.Fatalf("Len = %d, want %d", idx.Len(), ds.Count())
	}
}

// sameTree deep-compares two BKT nodes: pivot, bucket width, child
// bucket keys, and the exact identifier sequence of every leaf.
func sameTree(a, b *node) error {
	if a.leaf() != b.leaf() {
		return fmt.Errorf("leaf/internal mismatch")
	}
	if a.leaf() {
		if len(a.ids) != len(b.ids) {
			return fmt.Errorf("leaf sizes %d vs %d", len(a.ids), len(b.ids))
		}
		for i := range a.ids {
			if a.ids[i] != b.ids[i] {
				return fmt.Errorf("leaf id %d: %d vs %d", i, a.ids[i], b.ids[i])
			}
		}
		return nil
	}
	if a.pivotID != b.pivotID || a.width != b.width || a.pivotLive != b.pivotLive {
		return fmt.Errorf("pivot %d/%v/%v vs %d/%v/%v", a.pivotID, a.width, a.pivotLive, b.pivotID, b.width, b.pivotLive)
	}
	if len(a.children) != len(b.children) {
		return fmt.Errorf("fanout %d vs %d", len(a.children), len(b.children))
	}
	for bkey, ac := range a.children {
		bc, ok := b.children[bkey]
		if !ok {
			return fmt.Errorf("bucket %d missing", bkey)
		}
		if err := sameTree(ac, bc); err != nil {
			return fmt.Errorf("bucket %d: %w", bkey, err)
		}
	}
	return nil
}

// TestBKTParallelBuildIdentical checks the node-level parallel build
// produces exactly the sequential tree: the content-hashed pivot choice
// is order-independent, so worker scheduling cannot change the result.
func TestBKTParallelBuildIdentical(t *testing.T) {
	ds := testutil.IntVectorDataset(3000, 4, 100, 7)
	seq, err := New(ds, Options{Seed: 3, MaxDistance: 100, LeafCapacity: 4})
	if err != nil {
		t.Fatalf("sequential New: %v", err)
	}
	for _, workers := range []int{-1, 4} {
		par, err := New(ds, Options{Seed: 3, MaxDistance: 100, LeafCapacity: 4, Workers: workers})
		if err != nil {
			t.Fatalf("parallel New(workers=%d): %v", workers, err)
		}
		if err := sameTree(seq.root, par.root); err != nil {
			t.Fatalf("workers=%d tree differs from sequential: %v", workers, err)
		}
	}
}

// TestBKTBuildConcurrencyBounded asserts the token pool keeps the
// build's total concurrency at Workers — not Workers per tree level (the
// MVPT lesson from the serving-layer PR).
func TestBKTBuildConcurrencyBounded(t *testing.T) {
	const workers = 3
	ds, probe := testutil.ProbeDataset(testutil.IntVectorDataset(1500, 4, 100, 7), 0)
	if _, err := New(ds, Options{Seed: 3, MaxDistance: 100, Workers: workers}); err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := probe.Max(); got > workers {
		t.Fatalf("observed %d concurrent distance computations, Workers=%d", got, workers)
	}
}

func TestBKTDeletePivotKeepsRouting(t *testing.T) {
	idx, ds := newIntBKT(t, 150)
	// Delete every object in turn until half are gone, including pivots.
	for id := 0; id < 75; id++ {
		if err := idx.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	q := testutil.RandomQuery(ds, 8)
	for _, r := range []float64{0, 10, 40} {
		testutil.CheckRange(t, idx, ds, q, r)
	}
	testutil.CheckKNN(t, idx, ds, q, 10)
}

func TestBKTDuplicateObjects(t *testing.T) {
	objs := make([]core.Object, 100)
	for i := range objs {
		objs[i] = core.IntVector{int32(i % 3), 1} // heavy duplication
	}
	ds := core.NewDataset(core.NewSpace(core.IntLInf{}), objs)
	idx, err := New(ds, Options{Seed: 1, MaxDistance: 3, LeafCapacity: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := core.IntVector{0, 1}
	testutil.CheckRange(t, idx, ds, q, 0)
	testutil.CheckRange(t, idx, ds, q, 1)
	testutil.CheckKNN(t, idx, ds, q, 50)
}

func TestBKTStats(t *testing.T) {
	idx, _ := newIntBKT(t, 100)
	if idx.PageAccesses() != 0 || idx.DiskBytes() != 0 {
		t.Fatal("BKT must report zero disk activity")
	}
	if idx.MemBytes() <= 0 {
		t.Fatal("BKT must report positive memory")
	}
	if idx.Name() != "BKT" {
		t.Fatalf("Name = %q", idx.Name())
	}
}
