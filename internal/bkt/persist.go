package bkt

import (
	"fmt"
	"sort"

	"metricindex/internal/core"
	"metricindex/internal/persist"
	"metricindex/internal/store"
)

// Snapshot payload encoding for the BKT (spec: docs/PERSISTENCE.md §BKT).

const bktFormatVersion = 1

// maxTreeDepth bounds node-decoding recursion so corrupt payloads cannot
// exhaust the stack.
const maxTreeDepth = 10000

func init() {
	persist.Register("BKT", loadBKT)
}

// EncodeSnapshot writes the BKT payload: the (defaulted) build options,
// the object count and the tree. Pivot objects are stored with their
// nodes — a pivot may already be deleted from the dataset (pivotLive
// false) yet still route queries.
func (t *BKT) EncodeSnapshot(w *persist.Writer) error {
	w.U16(bktFormatVersion)
	w.U32(uint32(t.opts.LeafCapacity))
	w.U32(uint32(t.opts.MaxChildren))
	w.I64(t.opts.Seed)
	w.F64(t.opts.MaxDistance)
	w.I64(int64(t.opts.Workers))
	w.U32(uint32(t.size))
	encodeBKTNode(w, t.root)
	return nil
}

// Node tags: 0 = nil, 1 = leaf bucket, 2 = internal node with pivot and
// bucket-keyed children.
func encodeBKTNode(w *persist.Writer, n *node) {
	switch {
	case n == nil:
		w.U8(0)
	case n.leaf():
		w.U8(1)
		w.Int32s(n.ids)
	default:
		w.U8(2)
		w.U32(uint32(n.pivotID))
		w.Object(n.pivotVal)
		w.Bool(n.pivotLive)
		w.F64(n.width)
		keys := make([]int, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			w.U32(uint32(k))
			encodeBKTNode(w, n.children[k])
		}
	}
}

func decodeBKTNode(r *persist.Reader, depth int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("bkt: tree deeper than %d", maxTreeDepth)
	}
	switch tag := r.U8(); tag {
	case 0:
		return nil, r.Err()
	case 1:
		return &node{ids: r.Int32s()}, r.Err()
	case 2:
		n := &node{
			pivotID:   int32(r.U32()),
			pivotVal:  r.Object(),
			pivotLive: r.Bool(),
			width:     r.F64(),
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n.pivotVal == nil {
			return nil, fmt.Errorf("bkt: internal node without pivot object")
		}
		if n.width <= 0 {
			return nil, fmt.Errorf("bkt: non-positive bucket width %v", n.width)
		}
		cnt := r.Count(5) // key + at least a tag byte per child
		if r.Err() != nil {
			return nil, r.Err()
		}
		n.children = make(map[int]*node, cnt)
		for i := 0; i < cnt; i++ {
			k := int(r.U32())
			child, err := decodeBKTNode(r, depth+1)
			if err != nil {
				return nil, err
			}
			n.children[k] = child
		}
		return n, r.Err()
	default:
		return nil, fmt.Errorf("bkt: unknown node tag %d", tag)
	}
}

func loadBKT(ds *core.Dataset, r *persist.Reader) (core.Index, *store.Pager, error) {
	if v := r.U16(); r.Err() == nil && v != bktFormatVersion {
		return nil, nil, fmt.Errorf("bkt: unsupported payload version %d", v)
	}
	t := &BKT{ds: ds}
	t.opts.LeafCapacity = int(r.U32())
	t.opts.MaxChildren = int(r.U32())
	t.opts.Seed = r.I64()
	t.opts.MaxDistance = r.F64()
	t.opts.Workers = int(r.I64())
	t.size = int(r.U32())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	root, err := decodeBKTNode(r, 0)
	if err != nil {
		return nil, nil, err
	}
	t.root = root
	t.tokens = core.NewTokenPool(t.opts.Workers)
	return t, nil, nil
}
