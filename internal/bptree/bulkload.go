package bptree

import (
	"fmt"
	"sort"

	"metricindex/internal/store"
)

// Record is one (key, value) pair for bulk loading.
type Record struct {
	Key uint64
	Val uint64
}

// BulkLoad replaces the tree contents with the given records, packing
// leaves left-to-right at ~90% fill and building the internal levels
// bottom-up. This is how the SPB-tree achieves the lowest construction
// page-access count in Table 4: one write per page instead of a
// root-to-leaf traversal per record.
func (t *Tree) BulkLoad(records []Record) error {
	if !sort.SliceIsSorted(records, func(i, j int) bool { return records[i].Key < records[j].Key }) {
		return fmt.Errorf("bptree: bulk load requires key-sorted records")
	}
	fill := t.leafCap * 9 / 10
	if fill < 1 {
		fill = 1
	}
	type packed struct {
		pid    store.PageID
		maxKey uint64
		lo, hi uint64
	}
	var level []packed

	// Pack leaves, chaining Next pointers.
	var prevPID store.PageID = store.InvalidPage
	var prevNode *Node
	for start := 0; start < len(records); start += fill {
		end := start + fill
		if end > len(records) {
			end = len(records)
		}
		n := &Node{Leaf: true, Next: store.InvalidPage}
		for _, r := range records[start:end] {
			n.Keys = append(n.Keys, r.Key)
			n.Vals = append(n.Vals, r.Val)
		}
		pid := t.pager.Alloc()
		if prevNode != nil {
			prevNode.Next = pid
			t.writeNode(prevPID, prevNode)
		}
		prevPID, prevNode = pid, n
		lo, hi := t.auxOf(n)
		level = append(level, packed{pid, n.Keys[len(n.Keys)-1], lo, hi})
	}
	if prevNode != nil {
		t.writeNode(prevPID, prevNode)
	}
	if len(level) == 0 {
		t.root = t.pager.Alloc()
		t.writeNode(t.root, &Node{Leaf: true, Next: store.InvalidPage})
		t.size = 0
		return nil
	}

	// Build internal levels.
	intFill := t.intCap * 9 / 10
	if intFill < 2 {
		intFill = 2
	}
	for len(level) > 1 {
		var next []packed
		for start := 0; start < len(level); start += intFill {
			end := start + intFill
			if end > len(level) {
				end = len(level)
			}
			n := &Node{}
			for _, c := range level[start:end] {
				n.Keys = append(n.Keys, c.maxKey)
				n.Children = append(n.Children, c.pid)
				n.AuxLo = append(n.AuxLo, c.lo)
				n.AuxHi = append(n.AuxHi, c.hi)
			}
			pid := t.pager.Alloc()
			t.writeNode(pid, n)
			lo, hi := t.auxOf(n)
			next = append(next, packed{pid, n.Keys[len(n.Keys)-1], lo, hi})
		}
		level = next
	}
	t.root = level[0].pid
	t.size = len(records)
	return nil
}
