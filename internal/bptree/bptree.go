// Package bptree implements a disk-resident B+-tree over the simulated
// page store. It is the substrate of the M-index (which keys objects by
// iDistance-style mapped values, §5.3), the SPB-tree (which keys objects
// by Hilbert SFC values and stores MBB corners in non-leaf entries, §5.4),
// and the OmniB+-tree.
//
// Keys and values are uint64. Duplicate keys are allowed. Non-leaf entries
// optionally carry a client-maintained augmentation pair (two uint64) —
// the SPB-tree stores its packed MBB corners there. Every node touch goes
// through the pager, so page-access counts are comparable across indexes.
package bptree

import (
	"encoding/binary"
	"fmt"
	"math"

	"metricindex/internal/store"
)

// Augmenter maintains the per-entry augmentation of non-leaf entries.
// Implementations must be monotone under Merge (merging can only widen),
// because deletions do not recompute augmentations — they stay
// conservative, which keeps pruning traversals correct.
type Augmenter interface {
	// Leaf returns the augmentation of a single record.
	Leaf(key, val uint64) (lo, hi uint64)
	// Merge combines two augmentations.
	Merge(lo1, hi1, lo2, hi2 uint64) (lo, hi uint64)
}

// Node is the decoded form of a B+-tree page, exposed so indexes can run
// custom pruning traversals (the SPB-tree walks nodes best-first by MBB
// distance).
type Node struct {
	Leaf bool
	// Keys holds record keys (leaf) or per-child max keys (internal).
	Keys []uint64
	// Vals holds record values (leaf only).
	Vals []uint64
	// Children holds child page ids (internal only).
	Children []store.PageID
	// AuxLo/AuxHi hold per-child augmentations (internal only).
	AuxLo, AuxHi []uint64
	// Next links leaves left-to-right.
	Next store.PageID
}

const (
	leafHeader     = 1 + 2 + 4 // kind, count, next
	internalHeader = 1 + 2
	leafEntrySize  = 16 // key + val
	intEntrySize   = 8 + 4 + 16
)

// Tree is the B+-tree handle.
type Tree struct {
	pager *store.Pager
	aug   Augmenter
	root  store.PageID
	size  int
	// capacity per node kind, derived from the page size
	leafCap, intCap int
}

// New creates an empty tree on the pager.
func New(p *store.Pager, aug Augmenter) *Tree {
	t := &Tree{
		pager:   p,
		aug:     aug,
		leafCap: (p.PageSize() - leafHeader) / leafEntrySize,
		intCap:  (p.PageSize() - internalHeader) / intEntrySize,
	}
	if t.leafCap < 4 || t.intCap < 4 {
		panic(fmt.Sprintf("bptree: page size %d too small", p.PageSize()))
	}
	t.root = p.Alloc()
	t.writeNode(t.root, &Node{Leaf: true, Next: store.InvalidPage})
	return t
}

// Root returns the root page id.
func (t *Tree) Root() store.PageID { return t.root }

// Len returns the number of records.
func (t *Tree) Len() int { return t.size }

// ReadNode fetches and decodes a node (one page access, modulo cache).
func (t *Tree) ReadNode(pid store.PageID) (*Node, error) {
	buf, err := t.pager.Read(pid)
	if err != nil {
		return nil, err
	}
	n := &Node{}
	kind := buf[0]
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	if kind == 0 {
		n.Leaf = true
		n.Next = store.PageID(binary.LittleEndian.Uint32(buf[3:7]))
		off := leafHeader
		n.Keys = make([]uint64, count)
		n.Vals = make([]uint64, count)
		for i := 0; i < count; i++ {
			n.Keys[i] = binary.LittleEndian.Uint64(buf[off:])
			n.Vals[i] = binary.LittleEndian.Uint64(buf[off+8:])
			off += leafEntrySize
		}
		return n, nil
	}
	off := internalHeader
	n.Keys = make([]uint64, count)
	n.Children = make([]store.PageID, count)
	n.AuxLo = make([]uint64, count)
	n.AuxHi = make([]uint64, count)
	for i := 0; i < count; i++ {
		n.Keys[i] = binary.LittleEndian.Uint64(buf[off:])
		n.Children[i] = store.PageID(binary.LittleEndian.Uint32(buf[off+8:]))
		n.AuxLo[i] = binary.LittleEndian.Uint64(buf[off+12:])
		n.AuxHi[i] = binary.LittleEndian.Uint64(buf[off+20:])
		off += intEntrySize
	}
	return n, nil
}

// writeNode encodes and stores a node (one page access).
func (t *Tree) writeNode(pid store.PageID, n *Node) {
	buf := make([]byte, 0, t.pager.PageSize())
	if n.Leaf {
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.Keys)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.Next))
		for i := range n.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, n.Keys[i])
			buf = binary.LittleEndian.AppendUint64(buf, n.Vals[i])
		}
	} else {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.Keys)))
		for i := range n.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, n.Keys[i])
			buf = binary.LittleEndian.AppendUint32(buf, uint32(n.Children[i]))
			buf = binary.LittleEndian.AppendUint64(buf, n.AuxLo[i])
			buf = binary.LittleEndian.AppendUint64(buf, n.AuxHi[i])
		}
	}
	if err := t.pager.Write(pid, buf); err != nil {
		panic(fmt.Sprintf("bptree: node write: %v", err)) // pages are pre-allocated; cannot fail
	}
}

// auxOf computes a node's augmentation from its entries.
func (t *Tree) auxOf(n *Node) (uint64, uint64) {
	if t.aug == nil {
		return 0, 0
	}
	var lo, hi uint64
	first := true
	if n.Leaf {
		for i := range n.Keys {
			l, h := t.aug.Leaf(n.Keys[i], n.Vals[i])
			if first {
				lo, hi = l, h
				first = false
			} else {
				lo, hi = t.aug.Merge(lo, hi, l, h)
			}
		}
	} else {
		for i := range n.Keys {
			if first {
				lo, hi = n.AuxLo[i], n.AuxHi[i]
				first = false
			} else {
				lo, hi = t.aug.Merge(lo, hi, n.AuxLo[i], n.AuxHi[i])
			}
		}
	}
	return lo, hi
}

// splitResult reports an insert-induced split to the parent.
type splitResult struct {
	split    bool
	rightPID store.PageID
	rightKey uint64 // max key of new right node
	rightLo  uint64
	rightHi  uint64
	// updated left summary
	leftKey uint64
	leftLo  uint64
	leftHi  uint64
}

// Insert adds a (key, value) record.
func (t *Tree) Insert(key, val uint64) error {
	res, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	t.size++
	if res.split {
		newRoot := t.pager.Alloc()
		n := &Node{
			Leaf:     false,
			Keys:     []uint64{res.leftKey, res.rightKey},
			Children: []store.PageID{t.root, res.rightPID},
			AuxLo:    []uint64{res.leftLo, res.rightLo},
			AuxHi:    []uint64{res.leftHi, res.rightHi},
		}
		t.writeNode(newRoot, n)
		t.root = newRoot
	}
	return nil
}

func (t *Tree) insert(pid store.PageID, key, val uint64) (splitResult, error) {
	n, err := t.ReadNode(pid)
	if err != nil {
		return splitResult{}, err
	}
	if n.Leaf {
		// Insert in sorted position (stable after equal keys).
		pos := upperBound(n.Keys, key)
		n.Keys = insertU64(n.Keys, pos, key)
		n.Vals = insertU64(n.Vals, pos, val)
		if len(n.Keys) <= t.leafCap {
			t.writeNode(pid, n)
			lo, hi := t.auxOf(n)
			return splitResult{leftKey: n.Keys[len(n.Keys)-1], leftLo: lo, leftHi: hi}, nil
		}
		// Split.
		mid := len(n.Keys) / 2
		right := &Node{
			Leaf: true,
			Keys: append([]uint64(nil), n.Keys[mid:]...),
			Vals: append([]uint64(nil), n.Vals[mid:]...),
			Next: n.Next,
		}
		rightPID := t.pager.Alloc()
		n.Keys = n.Keys[:mid]
		n.Vals = n.Vals[:mid]
		n.Next = rightPID
		t.writeNode(pid, n)
		t.writeNode(rightPID, right)
		llo, lhi := t.auxOf(n)
		rlo, rhi := t.auxOf(right)
		return splitResult{
			split:    true,
			rightPID: rightPID,
			rightKey: right.Keys[len(right.Keys)-1],
			rightLo:  rlo, rightHi: rhi,
			leftKey: n.Keys[len(n.Keys)-1],
			leftLo:  llo, leftHi: lhi,
		}, nil
	}

	// Internal: descend into the first child whose max key >= key, or the
	// last child.
	ci := len(n.Keys) - 1
	for i, mk := range n.Keys {
		if key <= mk {
			ci = i
			break
		}
	}
	res, err := t.insert(n.Children[ci], key, val)
	if err != nil {
		return splitResult{}, err
	}
	n.Keys[ci] = res.leftKey
	n.AuxLo[ci], n.AuxHi[ci] = res.leftLo, res.leftHi
	if res.split {
		n.Keys = insertU64(n.Keys, ci+1, res.rightKey)
		n.Children = insertPID(n.Children, ci+1, res.rightPID)
		n.AuxLo = insertU64(n.AuxLo, ci+1, res.rightLo)
		n.AuxHi = insertU64(n.AuxHi, ci+1, res.rightHi)
	}
	if len(n.Keys) <= t.intCap {
		t.writeNode(pid, n)
		lo, hi := t.auxOf(n)
		return splitResult{leftKey: n.Keys[len(n.Keys)-1], leftLo: lo, leftHi: hi}, nil
	}
	// Split internal node.
	mid := len(n.Keys) / 2
	right := &Node{
		Keys:     append([]uint64(nil), n.Keys[mid:]...),
		Children: append([]store.PageID(nil), n.Children[mid:]...),
		AuxLo:    append([]uint64(nil), n.AuxLo[mid:]...),
		AuxHi:    append([]uint64(nil), n.AuxHi[mid:]...),
	}
	rightPID := t.pager.Alloc()
	n.Keys = n.Keys[:mid]
	n.Children = n.Children[:mid]
	n.AuxLo = n.AuxLo[:mid]
	n.AuxHi = n.AuxHi[:mid]
	t.writeNode(pid, n)
	t.writeNode(rightPID, right)
	llo, lhi := t.auxOf(n)
	rlo, rhi := t.auxOf(right)
	return splitResult{
		split:    true,
		rightPID: rightPID,
		rightKey: right.Keys[len(right.Keys)-1],
		rightLo:  rlo, rightHi: rhi,
		leftKey: n.Keys[len(n.Keys)-1],
		leftLo:  llo, leftHi: lhi,
	}, nil
}

// Delete removes one record matching (key, val). Nodes are allowed to
// underflow (no rebalancing): search correctness is unaffected and the
// paper's update experiment measures delete+reinsert, not compaction.
func (t *Tree) Delete(key, val uint64) error {
	pid, err := t.leafFor(key)
	if err != nil {
		return err
	}
	for pid != store.InvalidPage {
		n, err := t.ReadNode(pid)
		if err != nil {
			return err
		}
		for i := range n.Keys {
			if n.Keys[i] == key && n.Vals[i] == val {
				n.Keys = append(n.Keys[:i], n.Keys[i+1:]...)
				n.Vals = append(n.Vals[:i], n.Vals[i+1:]...)
				t.writeNode(pid, n)
				t.size--
				return nil
			}
			if n.Keys[i] > key {
				return fmt.Errorf("bptree: record (%d,%d) not found", key, val)
			}
		}
		pid = n.Next
	}
	return fmt.Errorf("bptree: record (%d,%d) not found", key, val)
}

// leafFor descends to the first leaf that may contain key.
func (t *Tree) leafFor(key uint64) (store.PageID, error) {
	pid := t.root
	for {
		n, err := t.ReadNode(pid)
		if err != nil {
			return store.InvalidPage, err
		}
		if n.Leaf {
			return pid, nil
		}
		ci := len(n.Keys) - 1
		for i, mk := range n.Keys {
			if key <= mk {
				ci = i
				break
			}
		}
		pid = n.Children[ci]
	}
}

// RangeScan invokes fn for every record with lo <= key <= hi, in key
// order, until fn returns false.
func (t *Tree) RangeScan(lo, hi uint64, fn func(key, val uint64) bool) error {
	pid, err := t.leafFor(lo)
	if err != nil {
		return err
	}
	for pid != store.InvalidPage {
		n, err := t.ReadNode(pid)
		if err != nil {
			return err
		}
		for i := range n.Keys {
			if n.Keys[i] < lo {
				continue
			}
			if n.Keys[i] > hi {
				return nil
			}
			if !fn(n.Keys[i], n.Vals[i]) {
				return nil
			}
		}
		pid = n.Next
	}
	return nil
}

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	pid := t.root
	for {
		n, err := t.ReadNode(pid)
		if err != nil {
			return 0, err
		}
		if n.Leaf {
			return h, nil
		}
		h++
		pid = n.Children[0]
	}
}

// KeyFromFloat maps a non-negative float64 to a uint64 preserving order
// (IEEE-754 bit patterns of non-negative floats sort numerically).
func KeyFromFloat(f float64) uint64 {
	if f < 0 || math.IsNaN(f) {
		panic(fmt.Sprintf("bptree: key %v must be a non-negative number", f))
	}
	return math.Float64bits(f)
}

// FloatFromKey inverts KeyFromFloat.
func FloatFromKey(k uint64) float64 { return math.Float64frombits(k) }

func upperBound(xs []uint64, key uint64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertU64(xs []uint64, pos int, v uint64) []uint64 {
	xs = append(xs, 0)
	copy(xs[pos+1:], xs[pos:])
	xs[pos] = v
	return xs
}

func insertPID(xs []store.PageID, pos int, v store.PageID) []store.PageID {
	xs = append(xs, 0)
	copy(xs[pos+1:], xs[pos:])
	xs[pos] = v
	return xs
}
