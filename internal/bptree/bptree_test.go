package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"metricindex/internal/store"
)

func collect(t *testing.T, tr *Tree, lo, hi uint64) []uint64 {
	t.Helper()
	var keys []uint64
	if err := tr.RangeScan(lo, hi, func(k, v uint64) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatalf("RangeScan: %v", err)
	}
	return keys
}

func TestInsertAndScanSorted(t *testing.T) {
	p := store.NewPager(512) // tiny pages force deep trees
	tr := New(p, nil)
	rng := rand.New(rand.NewSource(1))
	want := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(100000))
		if err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := collect(t, tr, 0, ^uint64(0))
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key %d: got %d want %d", i, got[i], want[i])
		}
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if h, _ := tr.Height(); h < 3 {
		t.Fatalf("expected height >= 3 on 512B pages, got %d", h)
	}
}

func TestRangeScanBounds(t *testing.T) {
	p := store.NewPager(512)
	tr := New(p, nil)
	for k := uint64(0); k < 1000; k += 2 { // even keys only
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, tr, 100, 200)
	if len(got) != 51 {
		t.Fatalf("scan [100,200] returned %d keys, want 51", len(got))
	}
	if got[0] != 100 || got[len(got)-1] != 200 {
		t.Fatalf("scan bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
	if got := collect(t, tr, 101, 101); len(got) != 0 {
		t.Fatalf("scan of absent key returned %v", got)
	}
	if got := collect(t, tr, 2000, 3000); len(got) != 0 {
		t.Fatalf("scan beyond max returned %v", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	p := store.NewPager(512)
	tr := New(p, nil)
	for v := uint64(0); v < 300; v++ {
		if err := tr.Insert(42, v); err != nil {
			t.Fatal(err)
		}
	}
	var vals []uint64
	tr.RangeScan(42, 42, func(k, v uint64) bool {
		vals = append(vals, v)
		return true
	})
	if len(vals) != 300 {
		t.Fatalf("got %d duplicates, want 300", len(vals))
	}
	// Delete a specific (key, val) pair.
	if err := tr.Delete(42, 123); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	vals = vals[:0]
	tr.RangeScan(42, 42, func(k, v uint64) bool {
		vals = append(vals, v)
		return true
	})
	if len(vals) != 299 {
		t.Fatalf("after delete got %d, want 299", len(vals))
	}
	for _, v := range vals {
		if v == 123 {
			t.Fatal("deleted value still present")
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	p := store.NewPager(512)
	tr := New(p, nil)
	tr.Insert(1, 1)
	if err := tr.Delete(2, 2); err == nil {
		t.Fatal("Delete of absent key should fail")
	}
	if err := tr.Delete(1, 99); err == nil {
		t.Fatal("Delete of absent value should fail")
	}
}

func TestInsertDeleteInterleavedQuick(t *testing.T) {
	// Property: after any sequence of inserts and deletes the tree scans
	// exactly the surviving multiset in sorted order.
	f := func(ops []uint16) bool {
		p := store.NewPager(512)
		tr := New(p, nil)
		ref := map[uint64]int{}
		var refKeys []uint64
		for i, op := range ops {
			k := uint64(op % 97)
			if i%3 == 2 && ref[k] > 0 {
				if err := tr.Delete(k, k); err != nil {
					return false
				}
				ref[k]--
			} else {
				if err := tr.Insert(k, k); err != nil {
					return false
				}
				ref[k]++
			}
		}
		refKeys = refKeys[:0]
		for k, c := range ref {
			for j := 0; j < c; j++ {
				refKeys = append(refKeys, k)
			}
		}
		sort.Slice(refKeys, func(i, j int) bool { return refKeys[i] < refKeys[j] })
		var got []uint64
		tr.RangeScan(0, ^uint64(0), func(k, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(refKeys) {
			return false
		}
		for i := range got {
			if got[i] != refKeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// minMaxAug tracks min/max value per subtree, a simple monotone augmenter.
type minMaxAug struct{}

func (minMaxAug) Leaf(k, v uint64) (uint64, uint64) { return v, v }
func (minMaxAug) Merge(l1, h1, l2, h2 uint64) (uint64, uint64) {
	if l2 < l1 {
		l1 = l2
	}
	if h2 > h1 {
		h1 = h2
	}
	return l1, h1
}

func TestAugmentationMaintained(t *testing.T) {
	p := store.NewPager(512)
	tr := New(p, minMaxAug{})
	rng := rand.New(rand.NewSource(5))
	minV, maxV := ^uint64(0), uint64(0)
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(100000))
		v := uint64(rng.Intn(1000000))
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	root, err := tr.ReadNode(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if root.Leaf {
		t.Fatal("expected internal root after 3000 inserts on 512B pages")
	}
	gotLo, gotHi := ^uint64(0), uint64(0)
	for i := range root.AuxLo {
		if root.AuxLo[i] < gotLo {
			gotLo = root.AuxLo[i]
		}
		if root.AuxHi[i] > gotHi {
			gotHi = root.AuxHi[i]
		}
	}
	if gotLo != minV || gotHi != maxV {
		t.Fatalf("root aux [%d,%d], want [%d,%d]", gotLo, gotHi, minV, maxV)
	}
	// Verify recursively: every internal entry's aux covers its child's.
	var check func(pid store.PageID) (uint64, uint64)
	check = func(pid store.PageID) (uint64, uint64) {
		n, err := tr.ReadNode(pid)
		if err != nil {
			t.Fatal(err)
		}
		if n.Leaf {
			lo, hi := ^uint64(0), uint64(0)
			for _, v := range n.Vals {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			return lo, hi
		}
		lo, hi := ^uint64(0), uint64(0)
		for i := range n.Children {
			clo, chi := check(n.Children[i])
			if clo < n.AuxLo[i] || chi > n.AuxHi[i] {
				t.Fatalf("child aux [%d,%d] exceeds stored [%d,%d]", clo, chi, n.AuxLo[i], n.AuxHi[i])
			}
			if n.AuxLo[i] < lo {
				lo = n.AuxLo[i]
			}
			if n.AuxHi[i] > hi {
				hi = n.AuxHi[i]
			}
		}
		return lo, hi
	}
	check(tr.Root())
}

func TestKeyFromFloatOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		ka, kb := KeyFromFloat(a), KeyFromFloat(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if FloatFromKey(KeyFromFloat(1234.5678)) != 1234.5678 {
		t.Fatal("float round trip failed")
	}
}

func TestPageAccountingCounts(t *testing.T) {
	p := store.NewPager(512)
	tr := New(p, nil)
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(i, i)
	}
	p.ResetStats()
	collect(t, tr, 500, 600)
	if p.PageAccesses() == 0 {
		t.Fatal("range scan must cost page accesses")
	}
	full := p.PageAccesses()
	p.ResetStats()
	collect(t, tr, 500, 510)
	if p.PageAccesses() >= full {
		t.Fatalf("narrow scan (%d PA) should cost less than wide scan (%d PA)", p.PageAccesses(), full)
	}
}
