package bptree

import (
	"fmt"

	"metricindex/internal/store"
)

// Restore rebinds a tree handle over a reopened pager volume whose pages
// already hold the nodes. Node capacities are re-derived from the page
// size; only the root page and entry count need to be supplied (they come
// from the owning index's snapshot payload).
func Restore(p *store.Pager, aug Augmenter, root store.PageID, size int) (*Tree, error) {
	if int(root) >= p.Pages() {
		return nil, fmt.Errorf("bptree: root page %d beyond volume (%d pages)", root, p.Pages())
	}
	if size < 0 {
		return nil, fmt.Errorf("bptree: negative size %d", size)
	}
	t := &Tree{
		pager:   p,
		aug:     aug,
		root:    root,
		size:    size,
		leafCap: (p.PageSize() - leafHeader) / leafEntrySize,
		intCap:  (p.PageSize() - internalHeader) / intEntrySize,
	}
	if t.leafCap < 4 || t.intCap < 4 {
		return nil, fmt.Errorf("bptree: page size %d too small", p.PageSize())
	}
	return t, nil
}
