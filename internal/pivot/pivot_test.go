package pivot

import (
	"testing"

	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

func TestHFPicksOutliers(t *testing.T) {
	// A dense cluster at the origin plus four distant corners: HF must
	// prefer the corners.
	objs := make([]core.Object, 0, 104)
	for i := 0; i < 100; i++ {
		objs = append(objs, core.Vector{float64(i % 10), float64(i / 10)})
	}
	corners := []core.Vector{{1000, 1000}, {-1000, 1000}, {1000, -1000}, {-1000, -1000}}
	cornerIDs := map[int]bool{}
	for _, c := range corners {
		cornerIDs[len(objs)] = true
		objs = append(objs, c)
	}
	ds := core.NewDataset(core.NewSpace(core.L2{}), objs)
	all := ds.LiveIDs()
	foci := HF(ds, all, 3, 1)
	if len(foci) != 3 {
		t.Fatalf("got %d foci", len(foci))
	}
	hits := 0
	for _, f := range foci {
		if cornerIDs[f] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("HF picked only %d corner outliers: %v", hits, foci)
	}
}

func TestHFIDistinctAndLive(t *testing.T) {
	ds := testutil.VectorDataset(500, 4, 100, core.L2{}, 7)
	pv, err := HFI(ds, 6, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pv) != 6 {
		t.Fatalf("got %d pivots", len(pv))
	}
	seen := map[int]bool{}
	for _, p := range pv {
		if seen[p] {
			t.Fatalf("duplicate pivot %d", p)
		}
		seen[p] = true
		if !ds.Live(p) {
			t.Fatalf("pivot %d not live", p)
		}
	}
}

func TestHFIBeatsRandomOnLowerBoundQuality(t *testing.T) {
	ds := testutil.VectorDataset(800, 4, 100, core.L2{}, 9)
	hfi, err := HFI(ds, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rnd := Random(ds, 4, 99)
	// Quality metric: mean PivotLowerBound / true distance over pairs —
	// the objective HFI greedily maximizes.
	quality := func(pv []int) float64 {
		var sum float64
		const pairs = 400
		for i := 0; i < pairs; i++ {
			a, b := (i*13)%800, (i*29+7)%800
			if a == b {
				continue
			}
			d := ds.Distance(a, b)
			if d == 0 {
				continue
			}
			qd := make([]float64, len(pv))
			od := make([]float64, len(pv))
			for j, p := range pv {
				qd[j] = ds.Distance(a, p)
				od[j] = ds.Distance(b, p)
			}
			sum += core.PivotLowerBound(qd, od) / d
		}
		return sum
	}
	if qh, qr := quality(hfi), quality(rnd); qh <= qr*0.95 {
		t.Fatalf("HFI quality %.1f should not trail random %.1f", qh, qr)
	}
}

func TestHFIErrors(t *testing.T) {
	ds := testutil.VectorDataset(50, 3, 10, core.L2{}, 1)
	if _, err := HFI(ds, 0, Options{}); err == nil {
		t.Fatal("k=0 must fail")
	}
	empty := core.NewDataset(core.NewSpace(core.L2{}), nil)
	if _, err := HFI(empty, 2, Options{}); err == nil {
		t.Fatal("empty dataset must fail")
	}
}

func TestSampleBounded(t *testing.T) {
	ds := testutil.VectorDataset(300, 2, 10, core.L2{}, 5)
	s := Sample(ds, Options{SampleSize: 64, Seed: 1})
	if len(s) != 64 {
		t.Fatalf("sample size %d", len(s))
	}
	s2 := Sample(ds, Options{SampleSize: 1000, Seed: 1})
	if len(s2) != 300 {
		t.Fatalf("over-large sample returned %d", len(s2))
	}
}

func TestPSAAssignsLPivotsPerObject(t *testing.T) {
	ds := testutil.VectorDataset(200, 4, 100, core.L2{}, 11)
	st, err := NewPSAState(ds, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CandVals) == 0 {
		t.Fatal("PSA state missing candidates")
	}
	sp := ds.Space()
	for _, id := range ds.LiveIDs() {
		pv, dv := st.Assign(sp, ds.Object(id), 3)
		if len(pv) != 3 || len(dv) != 3 {
			t.Fatalf("object %d has %d pivots", id, len(pv))
		}
		// Distances must be consistent with the snapshotted pivots.
		for j, p := range pv {
			want := sp.Metric().Distance(ds.Object(id), ds.Object(int(p)))
			if dv[j] != want {
				t.Fatalf("object %d pivot %d distance %v, want %v", id, p, dv[j], want)
			}
		}
	}
}

func TestSelectGroupsShape(t *testing.T) {
	ds := testutil.VectorDataset(200, 3, 100, core.L2{}, 13)
	g, err := SelectGroups(ds, 4, 3, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.L != 4 || g.M != 3 || len(g.IDs) != 4 || len(g.Vals[0]) != 3 {
		t.Fatalf("group shape wrong: %+v", g)
	}
	pv, dv := g.AssignExtreme(ds.Space(), ds.Object(0))
	if len(pv) != 4 || len(dv) != 4 {
		t.Fatalf("assignment shape %d/%d", len(pv), len(dv))
	}
	g.ReestimateMu(ds, Options{Seed: 6})
	for gi := range g.Mu {
		for _, mu := range g.Mu[gi] {
			if mu <= 0 {
				t.Fatalf("re-estimated mu %v", mu)
			}
		}
	}
}

func TestEstimateGroupSizeInRange(t *testing.T) {
	ds := testutil.VectorDataset(300, 3, 100, core.L2{}, 17)
	m := EstimateGroupSize(ds, 5, 10, Options{Seed: 3})
	if m < 2 || m > 8 {
		t.Fatalf("estimated m=%d outside [2,8]", m)
	}
}
