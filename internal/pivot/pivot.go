// Package pivot implements the pivot-selection algorithms the paper
// relies on: HF (the Omni hull-of-foci outlier finder [17]), HFI (the
// HF-based incremental selector of the SPB-tree paper [12], the
// "state-of-the-art" strategy §6.1 applies to every index), PSA
// (Algorithm 1 — the paper's improvement powering EPT*), random selection,
// and the pivot-group machinery of the original EPT [24].
//
// All selection work computes distances through the dataset's counted
// Space, so pivot-selection cost shows up in construction compdists
// exactly as in Table 4.
package pivot

import (
	"fmt"
	"math"
	"math/rand"

	"metricindex/internal/core"
)

// CPScale is the candidate-pivot pool size used by PSA and HFI. The paper
// sets it to 40 ("this value yields enough outliers in our experiments").
const CPScale = 40

// HF implements the hull-of-foci algorithm over the candidate ids: it
// finds k mutually far-apart outliers. It starts from the object farthest
// from a random seed, takes the object farthest from that as the second
// focus, and then repeatedly adds the object whose distances to the chosen
// foci deviate least from the first edge length (the Omni criterion).
func HF(ds *core.Dataset, candidates []int, k int, seed int64) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	rng := rand.New(rand.NewSource(seed))
	start := candidates[rng.Intn(len(candidates))]

	// f1: farthest from the random seed object.
	f1 := farthest(ds, candidates, start, nil)
	if k == 1 {
		return []int{f1}
	}
	// f2: farthest from f1.
	chosen := map[int]bool{f1: true}
	f2 := farthest(ds, candidates, f1, chosen)
	edge := ds.Distance(f1, f2)
	foci := []int{f1, f2}
	chosen[f2] = true

	// Distances from every candidate to each chosen focus, reused across
	// rounds.
	dists := make(map[int][]float64, len(candidates))
	for _, c := range candidates {
		if chosen[c] {
			continue
		}
		dists[c] = []float64{ds.Distance(c, f1), ds.Distance(c, f2)}
	}
	for len(foci) < k {
		bestErr := math.Inf(1)
		best := -1
		for _, c := range candidates {
			if chosen[c] {
				continue
			}
			var errSum float64
			for _, d := range dists[c] {
				errSum += math.Abs(d - edge)
			}
			if errSum < bestErr {
				bestErr = errSum
				best = c
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		foci = append(foci, best)
		delete(dists, best)
		for c, dv := range dists {
			dists[c] = append(dv, ds.Distance(c, best))
		}
	}
	return foci
}

// farthest returns the candidate maximizing d(from, ·), skipping excluded
// ids and the source itself.
func farthest(ds *core.Dataset, candidates []int, from int, exclude map[int]bool) int {
	best, bestD := from, -1.0
	for _, c := range candidates {
		if c == from || exclude[c] || !ds.Live(c) {
			continue
		}
		if d := ds.Distance(from, c); d > bestD {
			bestD = d
			best = c
		}
	}
	return best
}

// Options tunes the sampled selection algorithms.
type Options struct {
	// SampleSize bounds the object sample used as HF candidates and
	// precision probes. Default 1024.
	SampleSize int
	// Pairs is the number of sampled object pairs HFI scores candidate
	// pivots on. Default 256.
	Pairs int
	// Seed drives all sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.SampleSize <= 0 {
		o.SampleSize = 1024
	}
	if o.Pairs <= 0 {
		o.Pairs = 256
	}
	return o
}

// Sample draws up to opts.SampleSize live object ids without replacement.
func Sample(ds *core.Dataset, opts Options) []int {
	opts = opts.withDefaults()
	live := ds.LiveIDs()
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if len(live) > opts.SampleSize {
		live = live[:opts.SampleSize]
	}
	return live
}

// HFI implements the incremental selection of [12]: candidates come from
// HF over a sample, and pivots are added greedily to maximize the mean
// ratio between the pivot-space lower bound and the true distance over
// sampled object pairs — i.e. to make the mapped vector space resemble the
// original metric space as closely as possible.
func HFI(ds *core.Dataset, numPivots int, opts Options) ([]int, error) {
	opts = opts.withDefaults()
	if numPivots <= 0 {
		return nil, fmt.Errorf("pivot: non-positive pivot count %d", numPivots)
	}
	if ds.Count() == 0 {
		return nil, fmt.Errorf("pivot: empty dataset")
	}
	sample := Sample(ds, opts)
	cands := HF(ds, sample, min(CPScale, len(sample)), opts.Seed+1)
	if numPivots >= len(cands) {
		return cands[:min(numPivots, len(cands))], nil
	}

	rng := rand.New(rand.NewSource(opts.Seed + 2))
	type pair struct {
		a, b int
		d    float64
	}
	pairs := make([]pair, 0, opts.Pairs)
	for len(pairs) < opts.Pairs {
		a := sample[rng.Intn(len(sample))]
		b := sample[rng.Intn(len(sample))]
		if a == b {
			continue
		}
		d := ds.Distance(a, b)
		if d == 0 {
			continue
		}
		pairs = append(pairs, pair{a, b, d})
	}
	// Pre-compute candidate-to-pair-endpoint distances.
	candDist := make([][]float64, len(cands)) // candDist[ci][pi*2+side]
	for ci, c := range cands {
		dv := make([]float64, 2*len(pairs))
		for pi, pr := range pairs {
			dv[2*pi] = ds.Distance(c, pr.a)
			dv[2*pi+1] = ds.Distance(c, pr.b)
		}
		candDist[ci] = dv
	}

	chosen := make([]int, 0, numPivots)
	used := make([]bool, len(cands))
	lb := make([]float64, len(pairs)) // current best lower bound per pair
	for len(chosen) < numPivots {
		bestScore := -1.0
		bestCi := -1
		for ci := range cands {
			if used[ci] {
				continue
			}
			var score float64
			dv := candDist[ci]
			for pi, pr := range pairs {
				b := math.Abs(dv[2*pi] - dv[2*pi+1])
				if lb[pi] > b {
					b = lb[pi]
				}
				score += b / pr.d
			}
			if score > bestScore {
				bestScore = score
				bestCi = ci
			}
		}
		if bestCi < 0 {
			break
		}
		used[bestCi] = true
		chosen = append(chosen, cands[bestCi])
		dv := candDist[bestCi]
		for pi := range pairs {
			if b := math.Abs(dv[2*pi] - dv[2*pi+1]); b > lb[pi] {
				lb[pi] = b
			}
		}
	}
	return chosen, nil
}

// Random selects k distinct live object ids uniformly at random.
func Random(ds *core.Dataset, k int, seed int64) []int {
	live := ds.LiveIDs()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if k > len(live) {
		k = len(live)
	}
	return live[:k]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
