package pivot

import (
	"fmt"
	"math"
	"math/rand"

	"metricindex/internal/core"
)

// PSAState is the reusable state of Algorithm 1: the HF candidate pool and
// the probe sample with pre-computed probe-to-candidate distances. Indexes
// keep it to assign pivots to later insertions. Candidate and probe object
// values are snapshotted so the state survives dataset deletions.
type PSAState struct {
	CandIDs   []int32
	CandVals  []core.Object
	ProbeVals []core.Object
	// ProbeCand[si][ci] = d(probe si, candidate ci).
	ProbeCand [][]float64
}

// NewPSAState samples the candidate pool (HF over a sample, CPScale
// candidates) and the probe set, charging the pre-computation to the
// counted space.
func NewPSAState(ds *core.Dataset, opts Options) (*PSAState, error) {
	opts = opts.withDefaults()
	if ds.Count() == 0 {
		return nil, fmt.Errorf("pivot: empty dataset")
	}
	probeOpts := opts
	probeOpts.SampleSize = min(32, opts.SampleSize)
	probeOpts.Seed = opts.Seed + 11
	probeIDs := Sample(ds, probeOpts)
	candIDs := HF(ds, Sample(ds, opts), min(CPScale, ds.Count()), opts.Seed+12)

	st := &PSAState{
		CandIDs:   make([]int32, len(candIDs)),
		CandVals:  make([]core.Object, len(candIDs)),
		ProbeVals: make([]core.Object, len(probeIDs)),
		ProbeCand: make([][]float64, len(probeIDs)),
	}
	for ci, c := range candIDs {
		st.CandIDs[ci] = int32(c)
		st.CandVals[ci] = ds.Object(c)
	}
	sp := ds.Space()
	for si, s := range probeIDs {
		st.ProbeVals[si] = ds.Object(s)
		row := make([]float64, len(candIDs))
		for ci := range candIDs {
			row[ci] = sp.Distance(st.ProbeVals[si], st.CandVals[ci])
		}
		st.ProbeCand[si] = row
	}
	return st, nil
}

// Assign runs the greedy inner loop of Algorithm 1 for one object value:
// it picks the l candidates maximizing the expected D(o,s)/d(o,s) ratio
// over the probes, returning pivot ids and distances.
func (st *PSAState) Assign(sp *core.Space, o core.Object, l int) ([]int32, []float64) {
	if l > len(st.CandVals) {
		l = len(st.CandVals)
	}
	oCand := make([]float64, len(st.CandVals))
	for ci, c := range st.CandVals {
		oCand[ci] = sp.Distance(o, c)
	}
	oProbe := make([]float64, len(st.ProbeVals))
	for si, s := range st.ProbeVals {
		oProbe[si] = sp.Distance(o, s)
	}
	cur := make([]float64, len(st.ProbeVals))
	used := make([]bool, len(st.CandVals))
	pv := make([]int32, 0, l)
	dv := make([]float64, 0, l)
	for len(pv) < l {
		bestScore := math.Inf(-1)
		bestCi := -1
		for ci := range st.CandVals {
			if used[ci] {
				continue
			}
			var score float64
			for si := range st.ProbeVals {
				b := math.Abs(oCand[ci] - st.ProbeCand[si][ci])
				if cur[si] > b {
					b = cur[si]
				}
				if oProbe[si] > 0 {
					score += b / oProbe[si]
				}
			}
			if score > bestScore {
				bestScore = score
				bestCi = ci
			}
		}
		if bestCi < 0 {
			break
		}
		used[bestCi] = true
		pv = append(pv, st.CandIDs[bestCi])
		dv = append(dv, oCand[bestCi])
		for si := range st.ProbeVals {
			if b := math.Abs(oCand[bestCi] - st.ProbeCand[si][bestCi]); b > cur[si] {
				cur[si] = b
			}
		}
	}
	return pv, dv
}

// Groups is the original EPT selection state [24]: l groups of m random
// pivots each, plus the estimated mean distance μ_p per pivot. Each object
// takes one pivot per group — the one maximizing |d(o,p) − μ_p| (the
// "extreme" pivot, Fig 4). Pivot values are snapshotted so the groups
// survive dataset deletions.
type Groups struct {
	// M is the group size, L the number of groups.
	M, L int
	// IDs[g] lists the m pivot ids of group g.
	IDs [][]int32
	// Vals[g] holds the corresponding object values.
	Vals [][]core.Object
	// Mu[g][j] is the estimated mean of d(o, Vals[g][j]) over the dataset.
	Mu [][]float64
}

// SelectGroups draws l random groups of m pivots and estimates each
// pivot's μ from a sample, charging the estimation distances to the
// counted space (they are construction cost, per Table 4).
func SelectGroups(ds *core.Dataset, l, m int, opts Options) (*Groups, error) {
	opts = opts.withDefaults()
	if l <= 0 || m <= 0 {
		return nil, fmt.Errorf("pivot: invalid EPT group shape l=%d m=%d", l, m)
	}
	live := ds.LiveIDs()
	if len(live) == 0 {
		return nil, fmt.Errorf("pivot: empty dataset")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sOpts := opts
	sOpts.SampleSize = min(64, opts.SampleSize)
	sOpts.Seed = opts.Seed + 21
	sample := Sample(ds, sOpts)
	sp := ds.Space()
	g := &Groups{
		M: m, L: l,
		IDs:  make([][]int32, l),
		Vals: make([][]core.Object, l),
		Mu:   make([][]float64, l),
	}
	for gi := 0; gi < l; gi++ {
		g.IDs[gi] = make([]int32, m)
		g.Vals[gi] = make([]core.Object, m)
		g.Mu[gi] = make([]float64, m)
		for j := 0; j < m; j++ {
			p := live[rng.Intn(len(live))]
			g.IDs[gi][j] = int32(p)
			g.Vals[gi][j] = ds.Object(p)
			var sum float64
			for _, s := range sample {
				sum += sp.Distance(g.Vals[gi][j], ds.Object(s))
			}
			g.Mu[gi][j] = sum / float64(len(sample))
		}
	}
	return g, nil
}

// ReestimateMu recomputes every group pivot's μ from a fresh sample.
// The original EPT re-estimates the expected distances whenever an object
// is inserted, which is why its update cost dwarfs EPT*'s in Table 6
// ("EPT incurs high estimation costs when selecting pivots").
func (g *Groups) ReestimateMu(ds *core.Dataset, opts Options) {
	opts = opts.withDefaults()
	sOpts := opts
	sOpts.SampleSize = min(32, opts.SampleSize)
	sample := Sample(ds, sOpts)
	if len(sample) == 0 {
		return
	}
	sp := ds.Space()
	for gi := range g.Vals {
		for j := range g.Vals[gi] {
			var sum float64
			for _, s := range sample {
				sum += sp.Distance(g.Vals[gi][j], ds.Object(s))
			}
			g.Mu[gi][j] = sum / float64(len(sample))
		}
	}
}

// AssignExtreme picks, for one object value, its extreme pivot in every
// group, returning pivot ids and distances (the EPT row of Fig 5).
func (g *Groups) AssignExtreme(sp *core.Space, o core.Object) ([]int32, []float64) {
	pv := make([]int32, g.L)
	dv := make([]float64, g.L)
	for gi := 0; gi < g.L; gi++ {
		bestDev := math.Inf(-1)
		var bestP int32
		var bestD float64
		for j := range g.Vals[gi] {
			d := sp.Distance(o, g.Vals[gi][j])
			dev := math.Abs(d - g.Mu[gi][j])
			if dev > bestDev {
				bestDev = dev
				bestP = g.IDs[gi][j]
				bestD = d
			}
		}
		pv[gi] = bestP
		dv[gi] = bestD
	}
	return pv, dv
}

// EstimateGroupSize approximates the optimal m for a fixed l via the
// paper's Equation (1): cost(m) = m·l + n·(1 − Pr(|X−Y| > r))^l, with the
// probability estimated empirically from sampled objects and a radius r
// set to a typical query radius. It returns a value in [2, 8] — beyond
// that the m·l term dominates at laptop scale.
func EstimateGroupSize(ds *core.Dataset, l int, radius float64, opts Options) int {
	opts = opts.withDefaults()
	sOpts := opts
	sOpts.SampleSize = min(48, opts.SampleSize)
	sample := Sample(ds, sOpts)
	if len(sample) < 4 {
		return 2
	}
	rng := rand.New(rand.NewSource(opts.Seed + 31))
	var hit, tot int
	for t := 0; t < 200; t++ {
		p := sample[rng.Intn(len(sample))]
		a := sample[rng.Intn(len(sample))]
		b := sample[rng.Intn(len(sample))]
		if p == a || p == b || a == b {
			continue
		}
		if math.Abs(ds.Distance(a, p)-ds.Distance(b, p)) > radius {
			hit++
		}
		tot++
	}
	if tot == 0 {
		return 2
	}
	p := float64(hit) / float64(tot)
	n := float64(ds.Count())
	bestM, bestCost := 2, math.Inf(1)
	for m := 2; m <= 8; m++ {
		// Taking the extreme of m candidates roughly boosts the pruning
		// probability to 1-(1-p)^m.
		pm := 1 - math.Pow(1-p, float64(m))
		cost := float64(m*l) + n*math.Pow(1-pm, float64(l))
		if cost < bestCost {
			bestCost = cost
			bestM = m
		}
	}
	return bestM
}
