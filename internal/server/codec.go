package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"metricindex/internal/core"
)

// decodeObject parses a JSON query/insert object into the dataset's
// object type, chosen by a prototype live object: Vector ⇒ JSON number
// array, IntVector ⇒ JSON integer array, Word ⇒ JSON string. The wire
// shape is the natural JSON of each type, so clients post
// {"query": [1.5, 2.0]} or {"query": "fuzzy"}.
//
// Vector dimensionalities are validated against the prototype: the
// metrics treat a dimension mismatch as a programming error and panic,
// so a short (or null) array from the wire must be rejected here —
// found by FuzzDecodeQuery.
func decodeObject(raw json.RawMessage, proto core.Object) (core.Object, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing object")
	}
	switch p := proto.(type) {
	case core.Vector:
		var v core.Vector
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("object must be a number array: %w", err)
		}
		if len(v) != len(p) {
			return nil, fmt.Errorf("object has %d dimensions, dataset has %d", len(v), len(p))
		}
		return v, nil
	case core.IntVector:
		var v core.IntVector
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("object must be an integer array: %w", err)
		}
		if len(v) != len(p) {
			return nil, fmt.Errorf("object has %d dimensions, dataset has %d", len(v), len(p))
		}
		return v, nil
	case core.Word:
		var w string
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("object must be a string: %w", err)
		}
		return core.Word(w), nil
	default:
		return nil, fmt.Errorf("unsupported object type %T", proto)
	}
}

// encodeObject renders a stored object back to its wire shape.
func encodeObject(o core.Object) (json.RawMessage, error) {
	switch v := o.(type) {
	case core.Vector, core.IntVector:
		return json.Marshal(v)
	case core.Word:
		return json.Marshal(string(v))
	default:
		return nil, fmt.Errorf("unsupported object type %T", o)
	}
}

// decodeAttrs parses a JSON attribute bag into core.Attrs. The wire
// shape maps each JSON type to its attribute kind: a string becomes
// AttrString, an array of strings AttrTags, and a number AttrInt when
// it is an exact integer literal, AttrFloat otherwise. The int/float
// split never changes filter semantics — predicates compare numerics in
// a widened float64 domain — it only preserves the client's type
// through persistence. An empty or absent bag decodes to nil.
func decodeAttrs(raw json.RawMessage) (core.Attrs, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("attrs must be a JSON object: %w", err)
	}
	if len(m) == 0 {
		return nil, nil
	}
	a := make(core.Attrs, len(m))
	for k, v := range m {
		if k == "" {
			return nil, fmt.Errorf("attrs: empty field name")
		}
		switch x := v.(type) {
		case string:
			a[k] = core.StringValue(x)
		case json.Number:
			if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
				a[k] = core.IntValue(i)
				break
			}
			f, err := x.Float64()
			if err != nil {
				return nil, fmt.Errorf("attr %q: bad number %q", k, string(x))
			}
			a[k] = core.FloatValue(f)
		case []any:
			tags := make([]string, len(x))
			for i, t := range x {
				s, ok := t.(string)
				if !ok {
					return nil, fmt.Errorf("attr %q: tag arrays may hold strings only", k)
				}
				tags[i] = s
			}
			a[k] = core.TagsValue(tags...)
		default:
			return nil, fmt.Errorf("attr %q: must be a string, number, or string array", k)
		}
	}
	return a, nil
}
