package server

import (
	"encoding/json"
	"fmt"

	"metricindex/internal/core"
)

// decodeObject parses a JSON query/insert object into the dataset's
// object type, chosen by a prototype live object: Vector ⇒ JSON number
// array, IntVector ⇒ JSON integer array, Word ⇒ JSON string. The wire
// shape is the natural JSON of each type, so clients post
// {"query": [1.5, 2.0]} or {"query": "fuzzy"}.
//
// Vector dimensionalities are validated against the prototype: the
// metrics treat a dimension mismatch as a programming error and panic,
// so a short (or null) array from the wire must be rejected here —
// found by FuzzDecodeQuery.
func decodeObject(raw json.RawMessage, proto core.Object) (core.Object, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing object")
	}
	switch p := proto.(type) {
	case core.Vector:
		var v core.Vector
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("object must be a number array: %w", err)
		}
		if len(v) != len(p) {
			return nil, fmt.Errorf("object has %d dimensions, dataset has %d", len(v), len(p))
		}
		return v, nil
	case core.IntVector:
		var v core.IntVector
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("object must be an integer array: %w", err)
		}
		if len(v) != len(p) {
			return nil, fmt.Errorf("object has %d dimensions, dataset has %d", len(v), len(p))
		}
		return v, nil
	case core.Word:
		var w string
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("object must be a string: %w", err)
		}
		return core.Word(w), nil
	default:
		return nil, fmt.Errorf("unsupported object type %T", proto)
	}
}

// encodeObject renders a stored object back to its wire shape.
func encodeObject(o core.Object) (json.RawMessage, error) {
	switch v := o.(type) {
	case core.Vector, core.IntVector:
		return json.Marshal(v)
	case core.Word:
		return json.Marshal(string(v))
	default:
		return nil, fmt.Errorf("unsupported object type %T", o)
	}
}
