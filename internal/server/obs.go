package server

import (
	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/obs"
	"metricindex/internal/plan"
	"metricindex/internal/store"
)

// obsRegistrar is the optional interface of indexes that register their
// own instruments (shard.Sharded registers per-shard probe histograms).
// The server asserts it on the initial index and on every index its
// swap builder produces — in both cases before the structure serves, so
// registration never races a search.
type obsRegistrar interface {
	RegisterObs(reg *obs.Registry)
}

// registerObs wires every layer below the handlers into the registry.
// Numbers that already exist as counters somewhere (the Space's
// compdists, the cache's counters, the pager's global traffic, the live
// epoch) become pull-based views read at scrape time — the same sources
// /v1/stats reports, so the two surfaces cannot disagree. Only
// genuinely new measurements (swap durations, write-section waits) get
// push handles.
func (s *Server) registerObs() {
	reg := s.reg

	reg.CounterFunc("mx_compdists_total",
		"Distance computations on the serving Space (the paper's compdists).",
		func() float64 { return float64(s.space.CompDists()) })

	// Per-instance index numbers: gauges, not counters — PageAccesses
	// resets on every swap (construction cost is discarded so the counter
	// keeps measuring serving cost), and count moves both ways.
	reg.GaugeFunc("mx_index_epoch",
		"Committed write sections (updates and swaps) on the live index.",
		func() float64 { return float64(s.live.Epoch()) })
	reg.GaugeFunc("mx_index_objects",
		"Live objects in the serving dataset.",
		func() float64 {
			var n int
			s.live.View(func(ds *core.Dataset, _ core.Index) { n = ds.Count() })
			return float64(n)
		})
	reg.GaugeFunc("mx_index_page_accesses",
		"Page accesses of the serving index since its last swap or reset.",
		func() float64 { return float64(s.live.PageAccesses()) })

	// Answer cache: views over the cache's own counters.
	cacheVal := func(sel func(cache.Stats) int64) func() float64 {
		return func() float64 {
			st, ok := s.live.CacheStats()
			if !ok {
				return 0
			}
			return float64(sel(st))
		}
	}
	reg.CounterFunc("mx_cache_hits_total",
		"Answer-cache lookups served from a resident entry.",
		cacheVal(func(st cache.Stats) int64 { return st.Hits }))
	reg.CounterFunc("mx_cache_misses_total",
		"Answer-cache fills actually computed.",
		cacheVal(func(st cache.Stats) int64 { return st.Misses }))
	reg.CounterFunc("mx_cache_collapsed_total",
		"Callers served by waiting on another caller's in-flight fill.",
		cacheVal(func(st cache.Stats) int64 { return st.Collapsed }))
	reg.CounterFunc("mx_cache_evictions_total",
		"Answer-cache entries dropped to stay inside the byte budget.",
		cacheVal(func(st cache.Stats) int64 { return st.Evictions }))
	reg.GaugeFunc("mx_cache_entries",
		"Resident answer-cache entries.",
		cacheVal(func(st cache.Stats) int64 { return st.Entries }))
	reg.GaugeFunc("mx_cache_bytes",
		"Estimated resident bytes of cached answers.",
		cacheVal(func(st cache.Stats) int64 { return st.Bytes }))

	// Store pager: views over the process-wide monotone counters (the
	// per-instance ones reset on swap; see store.GlobalPageStats).
	reg.CounterFunc("mx_store_page_reads_total",
		"Physical page reads across all pager volumes (process-wide).",
		func() float64 { r, _, _ := store.GlobalPageStats(); return float64(r) })
	reg.CounterFunc("mx_store_page_writes_total",
		"Page writes across all pager volumes (process-wide).",
		func() float64 { _, w, _ := store.GlobalPageStats(); return float64(w) })
	reg.CounterFunc("mx_store_cache_hits_total",
		"Pager buffer-cache hits (reads that cost no page access, process-wide).",
		func() float64 { _, _, h := store.GlobalPageStats(); return float64(h) })

	// Epoch layer push handles: swap count/duration, write-lock wait,
	// and the planner's per-strategy counters (cache-served filtered
	// queries run no plan and count on none of the three).
	strategyCounter := func(st plan.Strategy) *obs.Counter {
		return reg.Counter("mx_plan_strategy_total",
			"Executed filtered-query plans by chosen strategy.",
			obs.Label{Key: "strategy", Value: st.String()})
	}
	s.live.SetObs(&epoch.Obs{
		Swaps: reg.Counter("mx_epoch_swaps_total",
			"Committed index swaps (hot rebuilds with cutover)."),
		SwapSeconds: reg.Histogram("mx_epoch_swap_seconds",
			"Duration of successful swaps, snapshot to cutover.",
			obs.DefLatencyBuckets),
		WriteWait: reg.Histogram("mx_epoch_write_wait_seconds",
			"Write-section wait for the epoch write lock.",
			obs.DefLatencyBuckets),
		PlanPre:   strategyCounter(plan.StrategyPre),
		PlanProbe: strategyCounter(plan.StrategyProbe),
		PlanPost:  strategyCounter(plan.StrategyPost),
	})

	// Shard layer (when the wrapped index is a sharded front): per-shard
	// probe histograms. Swapped-in replacements are handled by the
	// wrapped builder in New.
	s.live.View(func(_ *core.Dataset, idx core.Index) {
		if ro, ok := idx.(obsRegistrar); ok {
			ro.RegisterObs(reg)
		}
	})

	// Persistence: views over the /v1/stats source when configured.
	// mserve additionally registers WAL push handles and snapshot timers
	// on the shared registry (cmd/mserve/durable.go).
	if s.persStats != nil {
		reg.GaugeFunc("mx_persist_snapshot_epoch",
			"Epoch captured by the last snapshot.",
			func() float64 { return float64(s.persStats().SnapshotEpoch) })
		reg.GaugeFunc("mx_persist_snapshot_bytes",
			"Size of the last snapshot file.",
			func() float64 { return float64(s.persStats().SnapshotBytes) })
		reg.GaugeFunc("mx_persist_wal_records",
			"Valid records currently in the write-ahead log.",
			func() float64 { return float64(s.persStats().WALRecords) })
		reg.GaugeFunc("mx_persist_wal_bytes",
			"Valid bytes currently in the write-ahead log.",
			func() float64 { return float64(s.persStats().WALBytes) })
	}
}
