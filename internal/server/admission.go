package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by the admission controller when the wait
// queue is full; the HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: overloaded, queue full")

// admission bounds the number of requests executing concurrently
// (MaxInFlight) and the number allowed to wait for a slot (MaxQueue).
// Beyond both, requests are rejected immediately — load sheds at the
// door instead of collapsing the latency of everything already admitted.
type admission struct {
	sem      chan struct{} // capacity = max in-flight
	maxQueue int64
	waiting  atomic.Int64
	inflight atomic.Int64
	rejected atomic.Int64
	admitted atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire admits the request or fails fast: ErrOverloaded when MaxQueue
// requests are already waiting, the context error if the client gives up
// while queued. The caller must release() after a nil return.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}: // free slot, skip the queue accounting
	default:
		if a.waiting.Add(1) > a.maxQueue {
			a.waiting.Add(-1)
			a.rejected.Add(1)
			return ErrOverloaded
		}
		select {
		case a.sem <- struct{}{}:
			a.waiting.Add(-1)
		case <-ctx.Done():
			a.waiting.Add(-1)
			return ctx.Err()
		}
	}
	a.inflight.Add(1)
	a.admitted.Add(1)
	return nil
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// AdmissionStats is the controller's snapshot for /v1/stats.
type AdmissionStats struct {
	MaxInFlight int   `json:"max_in_flight"`
	MaxQueue    int   `json:"max_queue"`
	InFlight    int64 `json:"in_flight"`
	Waiting     int64 `json:"waiting"`
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxInFlight: cap(a.sem),
		MaxQueue:    int(a.maxQueue),
		InFlight:    a.inflight.Load(),
		Waiting:     a.waiting.Load(),
		Admitted:    a.admitted.Load(),
		Rejected:    a.rejected.Load(),
	}
}
