package server

import (
	"context"
	"errors"

	"metricindex/internal/obs"
)

// ErrOverloaded is returned by the admission controller when the wait
// queue is full; the HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: overloaded, queue full")

// admission bounds the number of requests executing concurrently
// (MaxInFlight) and the number allowed to wait for a slot (MaxQueue).
// Beyond both, requests are rejected immediately — load sheds at the
// door instead of collapsing the latency of everything already admitted.
//
// The controller's state lives directly in obs instruments: the queue
// check reads the same gauge /metrics scrapes and /v1/stats reports, so
// the control decision and both reporting surfaces can never disagree.
type admission struct {
	sem      chan struct{} // capacity = max in-flight
	maxQueue int64
	waiting  *obs.Gauge   // mx_server_queue_depth
	inflight *obs.Gauge   // mx_server_inflight
	admitted *obs.Counter // mx_server_admitted_total
	rejected *obs.Counter // mx_server_rejected_total
}

func newAdmission(maxInFlight, maxQueue int, reg *obs.Registry) *admission {
	return &admission{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		waiting: reg.Gauge("mx_server_queue_depth",
			"Requests waiting for an in-flight slot."),
		inflight: reg.Gauge("mx_server_inflight",
			"Requests executing concurrently."),
		admitted: reg.Counter("mx_server_admitted_total",
			"Requests admitted past the controller."),
		rejected: reg.Counter("mx_server_rejected_total",
			"Requests shed at admission because the wait queue was full."),
	}
}

// acquire admits the request or fails fast: ErrOverloaded when MaxQueue
// requests are already waiting, the context error if the client gives up
// while queued. The caller must release() after a nil return.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}: // free slot, skip the queue accounting
	default:
		if a.waiting.Add(1) > a.maxQueue {
			a.waiting.Add(-1)
			a.rejected.Inc()
			return ErrOverloaded
		}
		select {
		case a.sem <- struct{}{}:
			a.waiting.Add(-1)
		case <-ctx.Done():
			a.waiting.Add(-1)
			return ctx.Err()
		}
	}
	a.inflight.Add(1)
	a.admitted.Inc()
	return nil
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// AdmissionStats is the controller's snapshot for /v1/stats — read from
// the same obs instruments the /metrics scrape exposes.
type AdmissionStats struct {
	MaxInFlight int   `json:"max_in_flight"`
	MaxQueue    int   `json:"max_queue"`
	InFlight    int64 `json:"in_flight"`
	Waiting     int64 `json:"waiting"`
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxInFlight: cap(a.sem),
		MaxQueue:    int(a.maxQueue),
		InFlight:    a.inflight.Value(),
		Waiting:     a.waiting.Value(),
		Admitted:    a.admitted.Value(),
		Rejected:    a.rejected.Value(),
	}
}
