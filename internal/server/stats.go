package server

import (
	"sync"
	"time"

	"metricindex/internal/exec"
)

// ringSize bounds the latency samples kept per tracker; percentiles and
// qps are computed over this sliding window of most-recent requests.
const ringSize = 1024

// tracker accumulates one stats line — totals forever, latencies over a
// sliding window. One tracker exists per endpoint and per client.
type tracker struct {
	mu           sync.Mutex
	count        int64
	errors       int64
	compDists    int64
	pageAccesses int64
	when         [ringSize]time.Time
	durs         [ringSize]time.Duration
	n            int // samples stored (<= ringSize)
	next         int // ring cursor
}

// record adds one finished request. compDists/pageAccesses are the
// counter deltas observed across the request; under concurrency the
// shared counters blend across requests (same caveat as exec.BatchStats):
// overlapping requests each observe the other's work, so attribution —
// and the summed totals — are inflated by the overlap factor. They are
// exact whenever requests do not overlap.
func (tr *tracker) record(dur time.Duration, compDists, pageAccesses int64, failed bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.count++
	if failed {
		tr.errors++
	}
	tr.compDists += compDists
	tr.pageAccesses += pageAccesses
	tr.when[tr.next] = time.Now()
	tr.durs[tr.next] = dur
	tr.next = (tr.next + 1) % ringSize
	if tr.n < ringSize {
		tr.n++
	}
}

// reject counts a request shed by admission control without feeding the
// latency window — a flood of instant 429s must not drag the reported
// percentiles to zero while the served requests' latencies still show.
func (tr *tracker) reject() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.count++
	tr.errors++
}

// TrackerStats is one stats line of /v1/stats. Count includes rejected
// requests; QPS and the percentiles cover only executed ones.
type TrackerStats struct {
	Count        int64   `json:"count"`
	Errors       int64   `json:"errors"`
	CompDists    int64   `json:"compdists"`
	PageAccesses int64   `json:"page_accesses"`
	QPS          float64 `json:"qps"`
	P50Micros    int64   `json:"p50_us"`
	P95Micros    int64   `json:"p95_us"`
	P99Micros    int64   `json:"p99_us"`
}

func (tr *tracker) stats() TrackerStats {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := TrackerStats{
		Count:        tr.count,
		Errors:       tr.errors,
		CompDists:    tr.compDists,
		PageAccesses: tr.pageAccesses,
	}
	if tr.n == 0 {
		return s
	}
	durs := make([]time.Duration, tr.n)
	oldest := time.Now()
	for i := 0; i < tr.n; i++ {
		pos := (tr.next - 1 - i + 2*ringSize) % ringSize
		durs[i] = tr.durs[pos]
		if tr.when[pos].Before(oldest) {
			oldest = tr.when[pos]
		}
	}
	p50, p95, p99 := exec.LatencyPercentiles(durs)
	s.P50Micros = p50.Microseconds()
	s.P95Micros = p95.Microseconds()
	s.P99Micros = p99.Microseconds()
	if window := time.Since(oldest); window > 0 {
		s.QPS = float64(tr.n) / window.Seconds()
	}
	return s
}

// statSet is a keyed family of trackers (per endpoint, per client).
type statSet struct {
	mu sync.RWMutex
	m  map[string]*tracker
}

func newStatSet() *statSet { return &statSet{m: make(map[string]*tracker)} }

func (s *statSet) get(key string) *tracker {
	s.mu.RLock()
	tr := s.m[key]
	s.mu.RUnlock()
	if tr != nil {
		return tr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr = s.m[key]; tr == nil {
		tr = &tracker{}
		s.m[key] = tr
	}
	return tr
}

func (s *statSet) stats() map[string]TrackerStats {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	trs := make([]*tracker, 0, len(s.m))
	for k, tr := range s.m {
		keys = append(keys, k)
		trs = append(trs, tr)
	}
	s.mu.RUnlock()
	out := make(map[string]TrackerStats, len(keys))
	for i, k := range keys {
		out[k] = trs[i].stats()
	}
	return out
}
