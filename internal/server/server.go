// Package server is the long-lived query service in front of the metric
// indexes: it exposes an epoch.Live index over HTTP/JSON with endpoints
// for range search, kNN, batched workloads (routed through the
// internal/exec engine), inserts, deletes, statistics, and health — plus
// the two properties a production front needs that one-shot experiment
// binaries do not: admission control (bounded in-flight queries and a
// bounded wait queue, shedding load with 429 beyond both) and graceful
// index swap (POST /v1/swap rebuilds the structure in the background and
// cuts over atomically with zero dropped or wrong answers, courtesy of
// internal/epoch).
//
// Every answer the server returns is exactly the answer a direct call on
// the wrapped Index would return — the handlers add transport, accounting
// and synchronization, never approximation. Per-endpoint and per-client
// statistics report qps, p50/p95/p99 latency, compdists and page
// accesses over a sliding window of recent requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/exec"
	"metricindex/internal/obs"
	"metricindex/internal/plan"
)

// Options configures a Server.
type Options struct {
	// MaxInFlight bounds the requests executing concurrently; <= 0 uses
	// 4 × GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds the requests allowed to wait for an in-flight slot
	// before new arrivals are rejected with 429; <= 0 uses 4 × MaxInFlight.
	MaxQueue int
	// Workers sizes the batch engine pool behind /v1/batch; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// Builder rebuilds the index for POST /v1/swap. nil disables the
	// endpoint (501).
	Builder epoch.Builder
	// ClientHeader names the header that identifies a client for
	// per-client stats; requests without it are keyed by remote host.
	// Default "X-Client".
	ClientHeader string
	// Cache, when non-nil, installs an epoch-keyed answer cache of the
	// given shape on the live index (a zero Options gets the cache
	// package defaults). Hot queries are then served memoized — zero
	// compdists, zero page accesses — across /v1/range, /v1/knn and
	// /v1/batch, with hit/miss/eviction counters in /v1/stats. Every
	// committed insert, delete or swap bumps the epoch the entries are
	// keyed by, so cached answers never outlive a write. nil leaves the
	// live index's caching as the caller configured it.
	Cache *cache.Options
	// AfterSwap, when non-nil, runs synchronously after each successful
	// /v1/swap cutover with the committed epoch — the durability hook:
	// mserve uses it to snapshot the fresh structure and truncate the
	// write-ahead log. An error is reported to the caller (the swap
	// itself stays committed).
	AfterSwap func(epoch uint64) error
	// PersistStats, when non-nil, supplies the persistence block of
	// /v1/stats. nil omits the block.
	PersistStats func() PersistenceStats
	// Obs is the metrics registry every layer registers into and
	// GET /metrics scrapes. nil creates a private registry (metrics are
	// still collected and served; the caller just holds no handle).
	// mserve passes its own so the persistence layer shares it.
	Obs *obs.Registry
	// DisableMetrics leaves GET /metrics unmounted. Instrumentation
	// still runs — the registry is also the admission controller's
	// state — only the scrape endpoint disappears.
	DisableMetrics bool
	// PProf mounts net/http/pprof under GET /debug/pprof/.
	PProf bool
	// SlowQueryThreshold, when positive, logs every admitted request
	// whose handler ran at least this long, with its endpoint, duration,
	// compdists, page accesses and client.
	SlowQueryThreshold time.Duration
	// SlowQueryLogf receives the slow-query lines; nil uses log.Printf.
	SlowQueryLogf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.ClientHeader == "" {
		o.ClientHeader = "X-Client"
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
	if o.SlowQueryLogf == nil {
		o.SlowQueryLogf = log.Printf
	}
	return o
}

// Server serves an epoch.Live index over HTTP. Create with New, mount
// via Handler, or run with ListenAndServe/Serve.
type Server struct {
	live      *epoch.Live
	space     *core.Space
	proto     core.Object // prototype object fixing the wire type
	eng       *exec.Engine
	adm       *admission
	builder   epoch.Builder
	afterSwap func(epoch uint64) error
	persStats func() PersistenceStats
	clientHdr string
	start     time.Time
	endpoints *statSet
	clients   *statSet
	mux       *http.ServeMux
	hsrv      *http.Server

	reg        *obs.Registry
	slowThresh time.Duration
	slowLogf   func(format string, args ...any)
}

// New builds a server over a live index. The dataset's Space and object
// type are captured at construction (both survive swaps).
func New(live *epoch.Live, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	var space *core.Space
	var proto core.Object
	live.View(func(ds *core.Dataset, _ core.Index) {
		space = ds.Space()
		ids := ds.LiveIDs()
		if len(ids) > 0 {
			proto = ds.Object(ids[0])
		}
	})
	if proto == nil {
		return nil, fmt.Errorf("server: empty dataset, cannot infer the object type")
	}
	if opts.Cache != nil {
		live.SetCache(cache.New(*opts.Cache))
	}
	reg := opts.Obs
	s := &Server{
		live:  live,
		space: space,
		proto: proto,
		eng: exec.New(space, exec.Options{Workers: opts.Workers, Metrics: &exec.Metrics{
			Batches: reg.Counter("mx_exec_batches_total",
				"Batches dispatched through the exec engine."),
			BatchQueries: reg.Histogram("mx_exec_batch_queries",
				"Queries per dispatched batch.", obs.DefSizeBuckets),
			PredispatchHits: reg.Counter("mx_exec_predispatch_hits_total",
				"Batch queries answered from the answer cache before dispatch."),
			QueueWait: reg.Histogram("mx_exec_queue_wait_seconds",
				"Wait from batch arrival to worker pickup per dispatched query.",
				obs.DefLatencyBuckets),
		}}),
		adm:        newAdmission(opts.MaxInFlight, opts.MaxQueue, reg),
		builder:    opts.Builder,
		afterSwap:  opts.AfterSwap,
		persStats:  opts.PersistStats,
		clientHdr:  opts.ClientHeader,
		start:      time.Now(),
		endpoints:  newStatSet(),
		clients:    newStatSet(),
		reg:        reg,
		slowThresh: opts.SlowQueryThreshold,
		slowLogf:   opts.SlowQueryLogf,
	}
	if s.builder != nil {
		// Every index a swap builds gets instrumented before cutover, so
		// a rebuilt sharded front keeps observing its probe histograms.
		inner := s.builder
		s.builder = func(ds *core.Dataset) (core.Index, error) {
			idx, err := inner(ds)
			if err == nil {
				if ro, ok := idx.(obsRegistrar); ok {
					ro.RegisterObs(reg)
				}
			}
			return idx, err
		}
	}
	s.registerObs()
	s.mux = http.NewServeMux()
	s.hsrv = &http.Server{Handler: s.mux}
	s.mux.HandleFunc("POST /v1/range", s.handle("range", true, s.handleRange))
	s.mux.HandleFunc("POST /v1/knn", s.handle("knn", true, s.handleKNN))
	s.mux.HandleFunc("POST /v1/batch", s.handle("batch", true, s.handleBatch))
	s.mux.HandleFunc("POST /v1/insert", s.handle("insert", true, s.handleInsert))
	s.mux.HandleFunc("POST /v1/attrs", s.handle("attrs", true, s.handleAttrs))
	s.mux.HandleFunc("POST /v1/delete", s.handle("delete", true, s.handleDelete))
	s.mux.HandleFunc("POST /v1/swap", s.handle("swap", false, s.handleSwap))
	s.mux.HandleFunc("GET /v1/stats", s.handle("stats", false, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.handle("healthz", false, s.handleHealth))
	if !opts.DisableMetrics {
		// Mounted directly, not through handle(): the scrape is a
		// text-format read that must stay available under overload and
		// should not pollute the JSON endpoint stats.
		s.mux.Handle("GET /metrics", reg.Handler())
	}
	if opts.PProf {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Obs returns the server's metrics registry (for snapshotting by the
// bench harness and for the persistence layer to register into).
func (s *Server) Obs() *obs.Registry { return s.reg }

// Handler returns the HTTP handler tree (for mounting and tests).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until Shutdown or failure.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener (callers pick the port, e.g.
// 127.0.0.1:0 in tests and smoke runs).
func (s *Server) Serve(ln net.Listener) error {
	err := s.hsrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests and stops the listener.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hsrv.Shutdown(ctx)
}

// httpError carries a status code out of a handler.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// reqInfo carries the per-request clock points handle captures for its
// handler: arrival (before admission) and admission (after the
// controller let the request through) — the span timeline of a traced
// query is anchored on them.
type reqInfo struct {
	arrived  time.Time
	admitted time.Time
}

// handle wraps an endpoint with admission control, cost accounting,
// metrics, the slow-query log, and error mapping. admit=false exempts
// control-plane endpoints (stats/health, and swap — a swap runs for
// seconds and must not occupy a query slot; epoch.Live bounds it to one
// at a time itself).
//
// The per-endpoint metric handles are created once here at registration
// and captured by the closure, so the per-request cost is atomic
// increments only — no lookup, no allocation.
func (s *Server) handle(name string, admit bool, fn func(r *http.Request, ri *reqInfo) (any, error)) http.HandlerFunc {
	lbl := obs.Label{Key: "endpoint", Value: name}
	reqs := s.reg.Counter("mx_server_requests_total",
		"Requests executed (admitted and run, including errored).", lbl)
	errsC := s.reg.Counter("mx_server_errors_total",
		"Executed requests that returned an error.", lbl)
	sheds := s.reg.Counter("mx_server_sheds_total",
		"Requests shed at admission, never executed.", lbl)
	lat := s.reg.Histogram("mx_server_request_seconds",
		"Handler latency of executed requests (excludes admission wait).",
		obs.DefLatencyBuckets, lbl)
	return func(w http.ResponseWriter, r *http.Request) {
		ri := reqInfo{arrived: time.Now()}
		if admit {
			if err := s.adm.acquire(r.Context()); err != nil {
				// Shed requests never executed: count the error without
				// feeding a zero-duration sample into the latency window,
				// which would zero the percentiles exactly when the
				// operator is diagnosing an overload.
				sheds.Inc()
				s.endpoints.get(name).reject()
				s.clients.get(s.clientKey(r)).reject()
				s.writeError(w, err)
				return
			}
			defer s.adm.release()
		}
		ri.admitted = time.Now()
		compBase := s.space.CompDists()
		paBase := s.live.PageAccesses()
		res, err := fn(r, &ri)
		dur := time.Since(ri.admitted)
		comp := s.space.CompDists() - compBase
		pa := s.live.PageAccesses() - paBase
		if pa < 0 {
			pa = 0 // a swap replaced the index (and its counter) mid-request
		}
		reqs.Inc()
		lat.Observe(dur.Seconds())
		if err != nil {
			errsC.Inc()
		}
		s.endpoints.get(name).record(dur, comp, pa, err != nil)
		s.clients.get(s.clientKey(r)).record(dur, comp, pa, err != nil)
		if s.slowThresh > 0 && dur >= s.slowThresh {
			s.slowLogf("slow query: endpoint=%s dur=%s compdists=%d page_accesses=%d client=%s",
				name, dur, comp, pa, s.clientKey(r))
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// clientKey identifies the requester for per-client stats.
func (s *Server) clientKey(r *http.Request) string {
	if c := r.Header.Get(s.clientHdr); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, epoch.ErrSwapInProgress):
		code = http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusRequestTimeout
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// Neighbor is one kNN answer element on the wire.
type Neighbor struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

func toWire(nns []core.Neighbor) []Neighbor {
	out := make([]Neighbor, len(nns))
	for i, nb := range nns {
		out[i] = Neighbor{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

// TraceResult is the span timeline of a trace-flagged query: total
// handler time plus one span per stage (admission_wait, decode,
// cache_probe, read_wait, read_section, probe_shard<N>, merge, encode),
// each with the compdists and page accesses attributable to it. The
// glossary is docs/OBSERVABILITY.md.
type TraceResult struct {
	TotalMicros int64      `json:"total_us"`
	Spans       []obs.Span `json:"spans"`
}

// newTrace starts the span timeline of one traced request, anchored at
// arrival, with the admission wait already recorded.
func newTrace(ri *reqInfo) *obs.Trace {
	tr := obs.NewTraceAt(ri.arrived)
	tr.Add("admission_wait", ri.arrived, ri.admitted.Sub(ri.arrived), 0, 0)
	return tr
}

// finishTrace records the encode span — measured by marshalling the
// trace-less response, which is the same work writeJSON is about to
// repeat — and closes the timeline. Only traced requests pay the double
// marshal.
func finishTrace(tr *obs.Trace, ri *reqInfo, res any) *TraceResult {
	encStart := time.Now()
	_, _ = json.Marshal(res)
	tr.Add("encode", encStart, time.Since(encStart), 0, 0)
	return &TraceResult{
		TotalMicros: time.Since(ri.arrived).Microseconds(),
		Spans:       tr.Spans(),
	}
}

// parseFilter compiles the optional filter clause of a query request.
// An empty clause means unfiltered (nil predicate); a malformed one is
// a client error. The predicate is compiled exactly once per request —
// evaluation against candidate attribute bags is allocation-free.
func parseFilter(src string) (*plan.Predicate, error) {
	if src == "" {
		return nil, nil
	}
	p, err := plan.Parse(src)
	if err != nil {
		return nil, badRequest("filter: %v", err)
	}
	return p, nil
}

// strategyString renders a plan strategy for the wire. Strategy zero is
// the cache convention: the answer was served memoized, no plan ran.
func strategyString(st plan.Strategy) string {
	if st == 0 {
		return "cached"
	}
	return st.String()
}

// RangeRequest is the body of POST /v1/range. Filter optionally
// restricts the answer to objects whose attribute bag satisfies the
// predicate (see docs/HYBRID.md for the clause language); Trace opts
// into the per-query span timeline on the response.
type RangeRequest struct {
	Query  json.RawMessage `json:"query"`
	Radius float64         `json:"radius"`
	Filter string          `json:"filter,omitempty"`
	Trace  bool            `json:"trace,omitempty"`
}

// RangeResponse answers POST /v1/range. IDs is ascending, exactly the
// direct RangeSearch answer; Epoch is the dataset version the search
// observed — answer and epoch come from one read section, so the pair is
// safe to cache. Strategy is present iff the request carried a filter:
// the execution shape the planner chose ("pre", "probe", "post"), or
// "cached" when the answer came from the answer cache without running a
// plan. Trace is present iff the request set trace.
type RangeResponse struct {
	IDs      []int        `json:"ids"`
	Epoch    uint64       `json:"epoch"`
	Strategy string       `json:"strategy,omitempty"`
	Trace    *TraceResult `json:"trace,omitempty"`
}

func (s *Server) handleRange(r *http.Request, ri *reqInfo) (any, error) {
	decStart := time.Now()
	var req RangeRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	q, err := decodeObject(req.Query, s.proto)
	if err != nil {
		return nil, badRequest("query: %v", err)
	}
	if req.Radius < 0 {
		return nil, badRequest("radius must be >= 0")
	}
	pred, err := parseFilter(req.Filter)
	if err != nil {
		return nil, err
	}
	if !req.Trace {
		var (
			ids []int
			ep  uint64
			st  plan.Strategy
		)
		if pred != nil {
			ids, ep, st, err = s.live.RangeSearchFiltered(q, req.Radius, pred)
		} else {
			ids, ep, err = s.live.RangeSearchAt(q, req.Radius)
		}
		if err != nil {
			return nil, err
		}
		if ids == nil {
			ids = []int{}
		}
		resp := RangeResponse{IDs: ids, Epoch: ep}
		if pred != nil {
			resp.Strategy = strategyString(st)
		}
		return resp, nil
	}
	tr := newTrace(ri)
	tr.Add("decode", decStart, time.Since(decStart), 0, 0)
	var (
		ids []int
		ep  uint64
		st  plan.Strategy
	)
	if pred != nil {
		ids, ep, st, err = s.live.RangeSearchFilteredTraced(q, req.Radius, pred, tr)
	} else {
		ids, ep, err = s.live.RangeSearchTraced(q, req.Radius, tr)
	}
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []int{}
	}
	resp := RangeResponse{IDs: ids, Epoch: ep}
	if pred != nil {
		resp.Strategy = strategyString(st)
	}
	resp.Trace = finishTrace(tr, ri, resp)
	return resp, nil
}

// KNNRequest is the body of POST /v1/knn. Filter optionally restricts
// the answer to objects whose attribute bag satisfies the predicate
// (see docs/HYBRID.md); Trace opts into the per-query span timeline on
// the response.
type KNNRequest struct {
	Query  json.RawMessage `json:"query"`
	K      int             `json:"k"`
	Filter string          `json:"filter,omitempty"`
	Trace  bool            `json:"trace,omitempty"`
}

// KNNResponse answers POST /v1/knn, sorted by ascending distance
// (ties by id) exactly as the direct KNNSearch call returns; Epoch is
// the dataset version the search observed (see RangeResponse). Strategy
// is present iff the request carried a filter (see RangeResponse).
// Trace is present iff the request set trace.
type KNNResponse struct {
	Neighbors []Neighbor   `json:"neighbors"`
	Epoch     uint64       `json:"epoch"`
	Strategy  string       `json:"strategy,omitempty"`
	Trace     *TraceResult `json:"trace,omitempty"`
}

func (s *Server) handleKNN(r *http.Request, ri *reqInfo) (any, error) {
	decStart := time.Now()
	var req KNNRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	q, err := decodeObject(req.Query, s.proto)
	if err != nil {
		return nil, badRequest("query: %v", err)
	}
	if req.K <= 0 {
		return nil, badRequest("k must be >= 1")
	}
	pred, err := parseFilter(req.Filter)
	if err != nil {
		return nil, err
	}
	if !req.Trace {
		var (
			nns []core.Neighbor
			ep  uint64
			st  plan.Strategy
		)
		if pred != nil {
			nns, ep, st, err = s.live.KNNSearchFiltered(q, req.K, pred)
		} else {
			nns, ep, err = s.live.KNNSearchAt(q, req.K)
		}
		if err != nil {
			return nil, err
		}
		resp := KNNResponse{Neighbors: toWire(nns), Epoch: ep}
		if pred != nil {
			resp.Strategy = strategyString(st)
		}
		return resp, nil
	}
	tr := newTrace(ri)
	tr.Add("decode", decStart, time.Since(decStart), 0, 0)
	var (
		nns []core.Neighbor
		ep  uint64
		st  plan.Strategy
	)
	if pred != nil {
		nns, ep, st, err = s.live.KNNSearchFilteredTraced(q, req.K, pred, tr)
	} else {
		nns, ep, err = s.live.KNNSearchTraced(q, req.K, tr)
	}
	if err != nil {
		return nil, err
	}
	resp := KNNResponse{Neighbors: toWire(nns), Epoch: ep}
	if pred != nil {
		resp.Strategy = strategyString(st)
	}
	resp.Trace = finishTrace(tr, ri, resp)
	return resp, nil
}

// BatchRequest is the body of POST /v1/batch: a whole workload answered
// through the concurrent batch engine in one round trip. Type is "range"
// (with Radius) or "knn" (with K). Filter optionally applies one
// attribute predicate to every query in the batch (compiled once).
type BatchRequest struct {
	Type    string            `json:"type"`
	Queries []json.RawMessage `json:"queries"`
	Radius  float64           `json:"radius,omitempty"`
	K       int               `json:"k,omitempty"`
	Filter  string            `json:"filter,omitempty"`
}

// BatchStats reports the engine's per-batch cost on the wire.
// CacheHits is the number of queries the answer cache served before the
// batch ever reached a worker (0 without a cache). The p50/p95/p99
// percentiles cover only the queries that actually computed — cache
// hits return in single-digit microseconds and would otherwise drag the
// percentiles toward zero exactly when the operator is reading them —
// and the hit percentiles report the memoized path separately (zero
// when every query missed).
type BatchStats struct {
	Queries      int     `json:"queries"`
	WallMicros   int64   `json:"wall_us"`
	QPS          float64 `json:"qps"`
	CompDists    int64   `json:"compdists"`
	PageAccesses int64   `json:"page_accesses"`
	P50Micros    int64   `json:"p50_us"`
	P95Micros    int64   `json:"p95_us"`
	P99Micros    int64   `json:"p99_us"`
	HitP50Micros int64   `json:"hit_p50_us"`
	HitP95Micros int64   `json:"hit_p95_us"`
	HitP99Micros int64   `json:"hit_p99_us"`
	CacheHits    int     `json:"cache_hits"`
}

func toWireStats(st exec.BatchStats) BatchStats {
	return BatchStats{
		Queries:      st.Queries,
		WallMicros:   st.Wall.Microseconds(),
		QPS:          st.Throughput(),
		CompDists:    st.CompDists,
		PageAccesses: st.PageAccesses,
		P50Micros:    st.P50.Microseconds(),
		P95Micros:    st.P95.Microseconds(),
		P99Micros:    st.P99.Microseconds(),
		HitP50Micros: st.HitP50.Microseconds(),
		HitP95Micros: st.HitP95.Microseconds(),
		HitP99Micros: st.HitP99.Microseconds(),
		CacheHits:    st.CacheHits,
	}
}

// wirePlans renders the per-query strategies of a filtered batch
// (nil for unfiltered batches, so the field is omitted).
func wirePlans(plans []plan.Strategy) []string {
	if plans == nil {
		return nil
	}
	out := make([]string, len(plans))
	for i, st := range plans {
		out[i] = strategyString(st)
	}
	return out
}

// BatchResponse answers POST /v1/batch; IDs (range) or Neighbors (knn)
// is positionally aligned with the request's queries. Updates may commit
// while a batch runs, so each per-query answer observed some epoch in
// [EpochLow, EpochHigh]; only when the two are equal is the whole batch
// one consistent dataset version (and safe to cache as such).
type BatchResponse struct {
	IDs       [][]int      `json:"ids,omitempty"`
	Neighbors [][]Neighbor `json:"neighbors,omitempty"`
	Plans     []string     `json:"plans,omitempty"`
	Stats     BatchStats   `json:"stats"`
	EpochLow  uint64       `json:"epoch_low"`
	EpochHigh uint64       `json:"epoch_high"`
}

func (s *Server) handleBatch(r *http.Request, _ *reqInfo) (any, error) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("empty queries")
	}
	qs := make([]core.Object, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := decodeObject(raw, s.proto)
		if err != nil {
			return nil, badRequest("query %d: %v", i, err)
		}
		qs[i] = q
	}
	pred, err := parseFilter(req.Filter)
	if err != nil {
		return nil, err
	}
	epochLow := s.live.Epoch()
	switch req.Type {
	case "range":
		if req.Radius < 0 {
			return nil, badRequest("radius must be >= 0")
		}
		var res *exec.RangeResult
		if pred != nil {
			res, err = s.eng.BatchRangeSearchFiltered(r.Context(), s.live, qs, req.Radius, pred)
		} else {
			res, err = s.eng.BatchRangeSearch(r.Context(), s.live, qs, req.Radius)
		}
		if err != nil {
			return nil, err
		}
		ids := res.IDs
		for i := range ids {
			if ids[i] == nil {
				ids[i] = []int{}
			}
		}
		return BatchResponse{IDs: ids, Plans: wirePlans(res.Plans),
			Stats:    toWireStats(res.Stats),
			EpochLow: epochLow, EpochHigh: s.live.Epoch()}, nil
	case "knn":
		if req.K <= 0 {
			return nil, badRequest("k must be >= 1")
		}
		var res *exec.KNNResult
		if pred != nil {
			res, err = s.eng.BatchKNNSearchFiltered(r.Context(), s.live, qs, req.K, pred)
		} else {
			res, err = s.eng.BatchKNNSearch(r.Context(), s.live, qs, req.K)
		}
		if err != nil {
			return nil, err
		}
		nns := make([][]Neighbor, len(res.Neighbors))
		for i, part := range res.Neighbors {
			nns[i] = toWire(part)
		}
		return BatchResponse{Neighbors: nns, Plans: wirePlans(res.Plans),
			Stats:    toWireStats(res.Stats),
			EpochLow: epochLow, EpochHigh: s.live.Epoch()}, nil
	default:
		return nil, badRequest("type must be \"range\" or \"knn\", got %q", req.Type)
	}
}

// InsertRequest is the body of POST /v1/insert. Attrs optionally
// attaches an attribute bag to the object for filtered search: a JSON
// object mapping field names to strings, numbers, or string arrays
// (tag sets) — see decodeAttrs for the exact kind mapping.
type InsertRequest struct {
	Object json.RawMessage `json:"object"`
	Attrs  json.RawMessage `json:"attrs,omitempty"`
}

// InsertResponse reports the identifier the object now answers under
// and the epoch the write committed at.
type InsertResponse struct {
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleInsert(r *http.Request, _ *reqInfo) (any, error) {
	var req InsertRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	o, err := decodeObject(req.Object, s.proto)
	if err != nil {
		return nil, badRequest("object: %v", err)
	}
	attrs, err := decodeAttrs(req.Attrs)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	id, ep, err := s.live.AddAttrsAt(o, attrs)
	if err != nil {
		return nil, err
	}
	return InsertResponse{ID: id, Epoch: ep}, nil
}

// AttrsRequest is the body of POST /v1/attrs: replace the attribute bag
// of a live object (an absent or empty bag clears it).
type AttrsRequest struct {
	ID    int             `json:"id"`
	Attrs json.RawMessage `json:"attrs,omitempty"`
}

// AttrsResponse confirms the attribute write with its commit epoch.
type AttrsResponse struct {
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleAttrs(r *http.Request, _ *reqInfo) (any, error) {
	var req AttrsRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	attrs, err := decodeAttrs(req.Attrs)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	ep, err := s.live.SetAttrsAt(req.ID, attrs)
	if err != nil {
		return nil, badRequest("attrs %d: %v", req.ID, err)
	}
	return AttrsResponse{Epoch: ep}, nil
}

// DeleteRequest is the body of POST /v1/delete.
type DeleteRequest struct {
	ID int `json:"id"`
}

// DeleteResponse confirms the delete with its commit epoch.
type DeleteResponse struct {
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleDelete(r *http.Request, _ *reqInfo) (any, error) {
	var req DeleteRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	ep, err := s.live.RemoveAt(req.ID)
	if err != nil {
		return nil, badRequest("delete %d: %v", req.ID, err)
	}
	return DeleteResponse{Epoch: ep}, nil
}

// SwapResponse reports a completed graceful swap.
type SwapResponse struct {
	Epoch       uint64 `json:"epoch"`
	BuildMillis int64  `json:"build_ms"`
}

func (s *Server) handleSwap(r *http.Request, _ *reqInfo) (any, error) {
	if s.builder == nil {
		return nil, &httpError{code: http.StatusNotImplemented,
			err: errors.New("swap: no builder configured")}
	}
	start := time.Now()
	if err := s.live.Swap(s.builder); err != nil {
		return nil, err
	}
	ep := s.live.Epoch()
	if s.afterSwap != nil {
		if err := s.afterSwap(ep); err != nil {
			// The cutover is committed; only the durability hook failed.
			return nil, fmt.Errorf("swap committed at epoch %d, but persistence failed: %w", ep, err)
		}
	}
	return SwapResponse{Epoch: ep, BuildMillis: time.Since(start).Milliseconds()}, nil
}

// IndexStats describes the live index in /v1/stats.
type IndexStats struct {
	Name         string `json:"name"`
	Count        int    `json:"count"`
	Epoch        uint64 `json:"epoch"`
	MemBytes     int64  `json:"mem_bytes"`
	DiskBytes    int64  `json:"disk_bytes"`
	PageAccesses int64  `json:"page_accesses"`
}

// CacheStats describes the answer cache in /v1/stats. All counters are
// zero (and Enabled false) when no cache is attached to the live index.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Collapsed int64   `json:"collapsed"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`
	HitRate   float64 `json:"hit_rate"`
}

// PersistenceStats describes the durability state in /v1/stats: where the
// snapshot and write-ahead log live, the epoch the last snapshot captured,
// and the log's growth since. All fields are zero (Enabled false) when the
// server runs without a data directory.
type PersistenceStats struct {
	Enabled       bool   `json:"enabled"`
	Dir           string `json:"dir,omitempty"`
	Restored      bool   `json:"restored"`
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	WALRecords    int64  `json:"wal_records"`
	WALBytes      int64  `json:"wal_bytes"`
	Fsync         string `json:"fsync,omitempty"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Index         IndexStats              `json:"index"`
	Cache         CacheStats              `json:"cache"`
	Persistence   PersistenceStats        `json:"persistence"`
	Admission     AdmissionStats          `json:"admission"`
	Endpoints     map[string]TrackerStats `json:"endpoints"`
	Clients       map[string]TrackerStats `json:"clients"`
}

func (s *Server) cacheStats() CacheStats {
	st, ok := s.live.CacheStats()
	if !ok {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:   true,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Collapsed: st.Collapsed,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
		MaxBytes:  st.MaxBytes,
		HitRate:   st.HitRate(),
	}
}

func (s *Server) handleStats(*http.Request, *reqInfo) (any, error) {
	var info IndexStats
	s.live.View(func(ds *core.Dataset, idx core.Index) {
		info = IndexStats{
			Name:         idx.Name(),
			Count:        ds.Count(),
			MemBytes:     idx.MemBytes(),
			DiskBytes:    idx.DiskBytes(),
			PageAccesses: idx.PageAccesses(),
		}
	})
	info.Epoch = s.live.Epoch()
	var pers PersistenceStats
	if s.persStats != nil {
		pers = s.persStats()
	}
	return StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Index:         info,
		Cache:         s.cacheStats(),
		Persistence:   pers,
		Admission:     s.adm.stats(),
		Endpoints:     s.endpoints.stats(),
		Clients:       s.clients.stats(),
	}, nil
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Index  string `json:"index"`
	Epoch  uint64 `json:"epoch"`
}

func (s *Server) handleHealth(*http.Request, *reqInfo) (any, error) {
	return HealthResponse{Status: "ok", Index: s.live.Name(), Epoch: s.live.Epoch()}, nil
}
