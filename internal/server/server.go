// Package server is the long-lived query service in front of the metric
// indexes: it exposes an epoch.Live index over HTTP/JSON with endpoints
// for range search, kNN, batched workloads (routed through the
// internal/exec engine), inserts, deletes, statistics, and health — plus
// the two properties a production front needs that one-shot experiment
// binaries do not: admission control (bounded in-flight queries and a
// bounded wait queue, shedding load with 429 beyond both) and graceful
// index swap (POST /v1/swap rebuilds the structure in the background and
// cuts over atomically with zero dropped or wrong answers, courtesy of
// internal/epoch).
//
// Every answer the server returns is exactly the answer a direct call on
// the wrapped Index would return — the handlers add transport, accounting
// and synchronization, never approximation. Per-endpoint and per-client
// statistics report qps, p50/p95/p99 latency, compdists and page
// accesses over a sliding window of recent requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/exec"
)

// Options configures a Server.
type Options struct {
	// MaxInFlight bounds the requests executing concurrently; <= 0 uses
	// 4 × GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds the requests allowed to wait for an in-flight slot
	// before new arrivals are rejected with 429; <= 0 uses 4 × MaxInFlight.
	MaxQueue int
	// Workers sizes the batch engine pool behind /v1/batch; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// Builder rebuilds the index for POST /v1/swap. nil disables the
	// endpoint (501).
	Builder epoch.Builder
	// ClientHeader names the header that identifies a client for
	// per-client stats; requests without it are keyed by remote host.
	// Default "X-Client".
	ClientHeader string
	// Cache, when non-nil, installs an epoch-keyed answer cache of the
	// given shape on the live index (a zero Options gets the cache
	// package defaults). Hot queries are then served memoized — zero
	// compdists, zero page accesses — across /v1/range, /v1/knn and
	// /v1/batch, with hit/miss/eviction counters in /v1/stats. Every
	// committed insert, delete or swap bumps the epoch the entries are
	// keyed by, so cached answers never outlive a write. nil leaves the
	// live index's caching as the caller configured it.
	Cache *cache.Options
	// AfterSwap, when non-nil, runs synchronously after each successful
	// /v1/swap cutover with the committed epoch — the durability hook:
	// mserve uses it to snapshot the fresh structure and truncate the
	// write-ahead log. An error is reported to the caller (the swap
	// itself stays committed).
	AfterSwap func(epoch uint64) error
	// PersistStats, when non-nil, supplies the persistence block of
	// /v1/stats. nil omits the block.
	PersistStats func() PersistenceStats
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.ClientHeader == "" {
		o.ClientHeader = "X-Client"
	}
	return o
}

// Server serves an epoch.Live index over HTTP. Create with New, mount
// via Handler, or run with ListenAndServe/Serve.
type Server struct {
	live      *epoch.Live
	space     *core.Space
	proto     core.Object // prototype object fixing the wire type
	eng       *exec.Engine
	adm       *admission
	builder   epoch.Builder
	afterSwap func(epoch uint64) error
	persStats func() PersistenceStats
	clientHdr string
	start     time.Time
	endpoints *statSet
	clients   *statSet
	mux       *http.ServeMux
	hsrv      *http.Server
}

// New builds a server over a live index. The dataset's Space and object
// type are captured at construction (both survive swaps).
func New(live *epoch.Live, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	var space *core.Space
	var proto core.Object
	live.View(func(ds *core.Dataset, _ core.Index) {
		space = ds.Space()
		ids := ds.LiveIDs()
		if len(ids) > 0 {
			proto = ds.Object(ids[0])
		}
	})
	if proto == nil {
		return nil, fmt.Errorf("server: empty dataset, cannot infer the object type")
	}
	if opts.Cache != nil {
		live.SetCache(cache.New(*opts.Cache))
	}
	s := &Server{
		live:      live,
		space:     space,
		proto:     proto,
		eng:       exec.New(space, exec.Options{Workers: opts.Workers}),
		adm:       newAdmission(opts.MaxInFlight, opts.MaxQueue),
		builder:   opts.Builder,
		afterSwap: opts.AfterSwap,
		persStats: opts.PersistStats,
		clientHdr: opts.ClientHeader,
		start:     time.Now(),
		endpoints: newStatSet(),
		clients:   newStatSet(),
	}
	s.mux = http.NewServeMux()
	s.hsrv = &http.Server{Handler: s.mux}
	s.mux.HandleFunc("POST /v1/range", s.handle("range", true, s.handleRange))
	s.mux.HandleFunc("POST /v1/knn", s.handle("knn", true, s.handleKNN))
	s.mux.HandleFunc("POST /v1/batch", s.handle("batch", true, s.handleBatch))
	s.mux.HandleFunc("POST /v1/insert", s.handle("insert", true, s.handleInsert))
	s.mux.HandleFunc("POST /v1/delete", s.handle("delete", true, s.handleDelete))
	s.mux.HandleFunc("POST /v1/swap", s.handle("swap", false, s.handleSwap))
	s.mux.HandleFunc("GET /v1/stats", s.handle("stats", false, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.handle("healthz", false, s.handleHealth))
	return s, nil
}

// Handler returns the HTTP handler tree (for mounting and tests).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until Shutdown or failure.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener (callers pick the port, e.g.
// 127.0.0.1:0 in tests and smoke runs).
func (s *Server) Serve(ln net.Listener) error {
	err := s.hsrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests and stops the listener.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hsrv.Shutdown(ctx)
}

// httpError carries a status code out of a handler.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// handle wraps an endpoint with admission control, cost accounting and
// error mapping. admit=false exempts control-plane endpoints
// (stats/health, and swap — a swap runs for seconds and must not occupy
// a query slot; epoch.Live bounds it to one at a time itself).
func (s *Server) handle(name string, admit bool, fn func(r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if admit {
			if err := s.adm.acquire(r.Context()); err != nil {
				// Shed requests never executed: count the error without
				// feeding a zero-duration sample into the latency window,
				// which would zero the percentiles exactly when the
				// operator is diagnosing an overload.
				s.endpoints.get(name).reject()
				s.clients.get(s.clientKey(r)).reject()
				s.writeError(w, err)
				return
			}
			defer s.adm.release()
		}
		compBase := s.space.CompDists()
		paBase := s.live.PageAccesses()
		start := time.Now()
		res, err := fn(r)
		dur := time.Since(start)
		comp := s.space.CompDists() - compBase
		pa := s.live.PageAccesses() - paBase
		if pa < 0 {
			pa = 0 // a swap replaced the index (and its counter) mid-request
		}
		s.endpoints.get(name).record(dur, comp, pa, err != nil)
		s.clients.get(s.clientKey(r)).record(dur, comp, pa, err != nil)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// clientKey identifies the requester for per-client stats.
func (s *Server) clientKey(r *http.Request) string {
	if c := r.Header.Get(s.clientHdr); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, epoch.ErrSwapInProgress):
		code = http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusRequestTimeout
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// Neighbor is one kNN answer element on the wire.
type Neighbor struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

func toWire(nns []core.Neighbor) []Neighbor {
	out := make([]Neighbor, len(nns))
	for i, nb := range nns {
		out[i] = Neighbor{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

// RangeRequest is the body of POST /v1/range.
type RangeRequest struct {
	Query  json.RawMessage `json:"query"`
	Radius float64         `json:"radius"`
}

// RangeResponse answers POST /v1/range. IDs is ascending, exactly the
// direct RangeSearch answer; Epoch is the dataset version the search
// observed — answer and epoch come from one read section, so the pair is
// safe to cache.
type RangeResponse struct {
	IDs   []int  `json:"ids"`
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleRange(r *http.Request) (any, error) {
	var req RangeRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	q, err := decodeObject(req.Query, s.proto)
	if err != nil {
		return nil, badRequest("query: %v", err)
	}
	if req.Radius < 0 {
		return nil, badRequest("radius must be >= 0")
	}
	ids, ep, err := s.live.RangeSearchAt(q, req.Radius)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []int{}
	}
	return RangeResponse{IDs: ids, Epoch: ep}, nil
}

// KNNRequest is the body of POST /v1/knn.
type KNNRequest struct {
	Query json.RawMessage `json:"query"`
	K     int             `json:"k"`
}

// KNNResponse answers POST /v1/knn, sorted by ascending distance
// (ties by id) exactly as the direct KNNSearch call returns; Epoch is
// the dataset version the search observed (see RangeResponse).
type KNNResponse struct {
	Neighbors []Neighbor `json:"neighbors"`
	Epoch     uint64     `json:"epoch"`
}

func (s *Server) handleKNN(r *http.Request) (any, error) {
	var req KNNRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	q, err := decodeObject(req.Query, s.proto)
	if err != nil {
		return nil, badRequest("query: %v", err)
	}
	if req.K <= 0 {
		return nil, badRequest("k must be >= 1")
	}
	nns, ep, err := s.live.KNNSearchAt(q, req.K)
	if err != nil {
		return nil, err
	}
	return KNNResponse{Neighbors: toWire(nns), Epoch: ep}, nil
}

// BatchRequest is the body of POST /v1/batch: a whole workload answered
// through the concurrent batch engine in one round trip. Type is "range"
// (with Radius) or "knn" (with K).
type BatchRequest struct {
	Type    string            `json:"type"`
	Queries []json.RawMessage `json:"queries"`
	Radius  float64           `json:"radius,omitempty"`
	K       int               `json:"k,omitempty"`
}

// BatchStats reports the engine's per-batch cost on the wire.
// CacheHits is the number of queries the answer cache served before the
// batch ever reached a worker (0 without a cache).
type BatchStats struct {
	Queries      int     `json:"queries"`
	WallMicros   int64   `json:"wall_us"`
	QPS          float64 `json:"qps"`
	CompDists    int64   `json:"compdists"`
	PageAccesses int64   `json:"page_accesses"`
	P50Micros    int64   `json:"p50_us"`
	P95Micros    int64   `json:"p95_us"`
	P99Micros    int64   `json:"p99_us"`
	CacheHits    int     `json:"cache_hits"`
}

func toWireStats(st exec.BatchStats) BatchStats {
	return BatchStats{
		Queries:      st.Queries,
		WallMicros:   st.Wall.Microseconds(),
		QPS:          st.Throughput(),
		CompDists:    st.CompDists,
		PageAccesses: st.PageAccesses,
		P50Micros:    st.P50.Microseconds(),
		P95Micros:    st.P95.Microseconds(),
		P99Micros:    st.P99.Microseconds(),
		CacheHits:    st.CacheHits,
	}
}

// BatchResponse answers POST /v1/batch; IDs (range) or Neighbors (knn)
// is positionally aligned with the request's queries. Updates may commit
// while a batch runs, so each per-query answer observed some epoch in
// [EpochLow, EpochHigh]; only when the two are equal is the whole batch
// one consistent dataset version (and safe to cache as such).
type BatchResponse struct {
	IDs       [][]int      `json:"ids,omitempty"`
	Neighbors [][]Neighbor `json:"neighbors,omitempty"`
	Stats     BatchStats   `json:"stats"`
	EpochLow  uint64       `json:"epoch_low"`
	EpochHigh uint64       `json:"epoch_high"`
}

func (s *Server) handleBatch(r *http.Request) (any, error) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("empty queries")
	}
	qs := make([]core.Object, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := decodeObject(raw, s.proto)
		if err != nil {
			return nil, badRequest("query %d: %v", i, err)
		}
		qs[i] = q
	}
	epochLow := s.live.Epoch()
	switch req.Type {
	case "range":
		if req.Radius < 0 {
			return nil, badRequest("radius must be >= 0")
		}
		res, err := s.eng.BatchRangeSearch(r.Context(), s.live, qs, req.Radius)
		if err != nil {
			return nil, err
		}
		ids := res.IDs
		for i := range ids {
			if ids[i] == nil {
				ids[i] = []int{}
			}
		}
		return BatchResponse{IDs: ids, Stats: toWireStats(res.Stats),
			EpochLow: epochLow, EpochHigh: s.live.Epoch()}, nil
	case "knn":
		if req.K <= 0 {
			return nil, badRequest("k must be >= 1")
		}
		res, err := s.eng.BatchKNNSearch(r.Context(), s.live, qs, req.K)
		if err != nil {
			return nil, err
		}
		nns := make([][]Neighbor, len(res.Neighbors))
		for i, part := range res.Neighbors {
			nns[i] = toWire(part)
		}
		return BatchResponse{Neighbors: nns, Stats: toWireStats(res.Stats),
			EpochLow: epochLow, EpochHigh: s.live.Epoch()}, nil
	default:
		return nil, badRequest("type must be \"range\" or \"knn\", got %q", req.Type)
	}
}

// InsertRequest is the body of POST /v1/insert.
type InsertRequest struct {
	Object json.RawMessage `json:"object"`
}

// InsertResponse reports the identifier the object now answers under
// and the epoch the write committed at.
type InsertResponse struct {
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleInsert(r *http.Request) (any, error) {
	var req InsertRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	o, err := decodeObject(req.Object, s.proto)
	if err != nil {
		return nil, badRequest("object: %v", err)
	}
	id, ep, err := s.live.AddAt(o)
	if err != nil {
		return nil, err
	}
	return InsertResponse{ID: id, Epoch: ep}, nil
}

// DeleteRequest is the body of POST /v1/delete.
type DeleteRequest struct {
	ID int `json:"id"`
}

// DeleteResponse confirms the delete with its commit epoch.
type DeleteResponse struct {
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleDelete(r *http.Request) (any, error) {
	var req DeleteRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	ep, err := s.live.RemoveAt(req.ID)
	if err != nil {
		return nil, badRequest("delete %d: %v", req.ID, err)
	}
	return DeleteResponse{Epoch: ep}, nil
}

// SwapResponse reports a completed graceful swap.
type SwapResponse struct {
	Epoch       uint64 `json:"epoch"`
	BuildMillis int64  `json:"build_ms"`
}

func (s *Server) handleSwap(r *http.Request) (any, error) {
	if s.builder == nil {
		return nil, &httpError{code: http.StatusNotImplemented,
			err: errors.New("swap: no builder configured")}
	}
	start := time.Now()
	if err := s.live.Swap(s.builder); err != nil {
		return nil, err
	}
	ep := s.live.Epoch()
	if s.afterSwap != nil {
		if err := s.afterSwap(ep); err != nil {
			// The cutover is committed; only the durability hook failed.
			return nil, fmt.Errorf("swap committed at epoch %d, but persistence failed: %w", ep, err)
		}
	}
	return SwapResponse{Epoch: ep, BuildMillis: time.Since(start).Milliseconds()}, nil
}

// IndexStats describes the live index in /v1/stats.
type IndexStats struct {
	Name         string `json:"name"`
	Count        int    `json:"count"`
	Epoch        uint64 `json:"epoch"`
	MemBytes     int64  `json:"mem_bytes"`
	DiskBytes    int64  `json:"disk_bytes"`
	PageAccesses int64  `json:"page_accesses"`
}

// CacheStats describes the answer cache in /v1/stats. All counters are
// zero (and Enabled false) when no cache is attached to the live index.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Collapsed int64   `json:"collapsed"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`
	HitRate   float64 `json:"hit_rate"`
}

// PersistenceStats describes the durability state in /v1/stats: where the
// snapshot and write-ahead log live, the epoch the last snapshot captured,
// and the log's growth since. All fields are zero (Enabled false) when the
// server runs without a data directory.
type PersistenceStats struct {
	Enabled       bool   `json:"enabled"`
	Dir           string `json:"dir,omitempty"`
	Restored      bool   `json:"restored"`
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	WALRecords    int64  `json:"wal_records"`
	WALBytes      int64  `json:"wal_bytes"`
	Fsync         string `json:"fsync,omitempty"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Index         IndexStats              `json:"index"`
	Cache         CacheStats              `json:"cache"`
	Persistence   PersistenceStats        `json:"persistence"`
	Admission     AdmissionStats          `json:"admission"`
	Endpoints     map[string]TrackerStats `json:"endpoints"`
	Clients       map[string]TrackerStats `json:"clients"`
}

func (s *Server) cacheStats() CacheStats {
	st, ok := s.live.CacheStats()
	if !ok {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:   true,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Collapsed: st.Collapsed,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
		MaxBytes:  st.MaxBytes,
		HitRate:   st.HitRate(),
	}
}

func (s *Server) handleStats(*http.Request) (any, error) {
	var info IndexStats
	s.live.View(func(ds *core.Dataset, idx core.Index) {
		info = IndexStats{
			Name:         idx.Name(),
			Count:        ds.Count(),
			MemBytes:     idx.MemBytes(),
			DiskBytes:    idx.DiskBytes(),
			PageAccesses: idx.PageAccesses(),
		}
	})
	info.Epoch = s.live.Epoch()
	var pers PersistenceStats
	if s.persStats != nil {
		pers = s.persStats()
	}
	return StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Index:         info,
		Cache:         s.cacheStats(),
		Persistence:   pers,
		Admission:     s.adm.stats(),
		Endpoints:     s.endpoints.stats(),
		Clients:       s.clients.stats(),
	}, nil
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Index  string `json:"index"`
	Epoch  uint64 `json:"epoch"`
}

func (s *Server) handleHealth(*http.Request) (any, error) {
	return HealthResponse{Status: "ok", Index: s.live.Name(), Epoch: s.live.Epoch()}, nil
}
