package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/obs"
	"metricindex/internal/pivot"
	"metricindex/internal/table"
	"metricindex/internal/testutil"
)

// laesaBuilder is the rebuild path every test server uses.
func laesaBuilder(ds *core.Dataset) (core.Index, error) {
	pv, err := pivot.HFI(ds, 4, pivot.Options{Seed: 3})
	if err != nil {
		return nil, err
	}
	return table.NewLAESA(ds, pv)
}

// newTestServer builds a LAESA-backed server over a fresh vector dataset.
func newTestServer(t *testing.T, n int, opts Options) (*Server, *epoch.Live, *httptest.Server) {
	t.Helper()
	ds := testutil.VectorDataset(n, 4, 100, core.L2{}, 9)
	idx, err := laesaBuilder(ds)
	if err != nil {
		t.Fatal(err)
	}
	live := epoch.NewLive(ds, idx)
	if opts.Builder == nil {
		opts.Builder = laesaBuilder
	}
	srv, err := New(live, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, live, ts
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, url string, body, into any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("POST %s: bad response %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: bad response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestAnswersMatchDirectCalls is the server's core contract: every
// endpoint returns exactly what the same call on the wrapped index
// returns — ids, order, distances.
func TestAnswersMatchDirectCalls(t *testing.T) {
	_, live, ts := newTestServer(t, 400, Options{})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })

	for qs := int64(0); qs < 5; qs++ {
		q := testutil.RandomQuery(ds, qs)
		const r = 30.0
		const k = 7

		var rr RangeResponse
		if code := post(t, ts.URL+"/v1/range", map[string]any{"query": q, "radius": r}, &rr); code != 200 {
			t.Fatalf("range: status %d", code)
		}
		wantIDs, err := live.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rr.IDs, normIDs(wantIDs)) {
			t.Fatalf("range answer differs:\n got %v\nwant %v", rr.IDs, wantIDs)
		}

		var kr KNNResponse
		if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": k}, &kr); code != 200 {
			t.Fatalf("knn: status %d", code)
		}
		wantNNs, err := live.KNNSearch(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kr.Neighbors, toWire(wantNNs)) {
			t.Fatalf("knn answer differs:\n got %v\nwant %v", kr.Neighbors, wantNNs)
		}
	}
}

// normIDs matches the server's empty-answer representation.
func normIDs(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}

// TestBatchEndpoint checks /v1/batch equals per-query direct calls and
// reports SLO stats.
func TestBatchEndpoint(t *testing.T) {
	_, live, ts := newTestServer(t, 400, Options{Workers: 4})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	queries := make([]core.Object, 16)
	for i := range queries {
		queries[i] = testutil.RandomQuery(ds, int64(50+i))
	}

	var br BatchResponse
	if code := post(t, ts.URL+"/v1/batch", map[string]any{"type": "knn", "queries": queries, "k": 5}, &br); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	if len(br.Neighbors) != len(queries) {
		t.Fatalf("batch dropped queries: %d answers for %d queries", len(br.Neighbors), len(queries))
	}
	for i, q := range queries {
		want, err := live.KNNSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(br.Neighbors[i], toWire(want)) {
			t.Fatalf("batch query %d differs:\n got %v\nwant %v", i, br.Neighbors[i], want)
		}
	}
	st := br.Stats
	if st.Queries != len(queries) || st.CompDists <= 0 || st.P50Micros <= 0 ||
		st.P95Micros < st.P50Micros || st.P99Micros < st.P95Micros {
		t.Fatalf("batch stats malformed: %+v", st)
	}

	var rr BatchResponse
	if code := post(t, ts.URL+"/v1/batch", map[string]any{"type": "range", "queries": queries, "radius": 25.0}, &rr); code != 200 {
		t.Fatalf("batch range: status %d", code)
	}
	for i, q := range queries {
		want, err := live.RangeSearch(q, 25)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rr.IDs[i], normIDs(want)) {
			t.Fatalf("batch range query %d differs:\n got %v\nwant %v", i, rr.IDs[i], want)
		}
	}
}

// TestInsertDeleteRoundTrip mutates through the API and checks searches
// observe the changes immediately, with the epoch advancing per commit.
func TestInsertDeleteRoundTrip(t *testing.T) {
	_, live, ts := newTestServer(t, 200, Options{})
	obj := core.Vector{999, 999, 999, 999}

	var ir InsertResponse
	if code := post(t, ts.URL+"/v1/insert", map[string]any{"object": obj}, &ir); code != 200 {
		t.Fatalf("insert: status %d", code)
	}
	var rr RangeResponse
	if code := post(t, ts.URL+"/v1/range", map[string]any{"query": obj, "radius": 0.0}, &rr); code != 200 {
		t.Fatalf("range: status %d", code)
	}
	if !reflect.DeepEqual(rr.IDs, []int{ir.ID}) {
		t.Fatalf("inserted object not served: got %v, want [%d]", rr.IDs, ir.ID)
	}
	if rr.Epoch != ir.Epoch {
		t.Fatalf("epoch moved without a write: %d then %d", ir.Epoch, rr.Epoch)
	}

	var dr DeleteResponse
	if code := post(t, ts.URL+"/v1/delete", map[string]int{"id": ir.ID}, &dr); code != 200 {
		t.Fatalf("delete: status %d", code)
	}
	if dr.Epoch != ir.Epoch+1 {
		t.Fatalf("delete epoch %d, want %d", dr.Epoch, ir.Epoch+1)
	}
	if code := post(t, ts.URL+"/v1/range", map[string]any{"query": obj, "radius": 0.0}, &rr); code != 200 || len(rr.IDs) != 0 {
		t.Fatalf("deleted object still served: status %d ids %v", code, rr.IDs)
	}
	// Deleting twice is a client error, not a server fault.
	if code := post(t, ts.URL+"/v1/delete", map[string]int{"id": ir.ID}, nil); code != http.StatusBadRequest {
		t.Fatalf("double delete: status %d, want 400", code)
	}
	live.View(func(ds *core.Dataset, idx core.Index) {
		q := testutil.RandomQuery(ds, 3)
		testutil.CheckRange(t, idx, ds, q, 20)
	})
}

// TestSwapUnderHTTPLoad swaps the index while HTTP queries hammer the
// server: every request must succeed (zero dropped), and answers after
// the swap stay exact.
func TestSwapUnderHTTPLoad(t *testing.T) {
	_, live, ts := newTestServer(t, 400, Options{})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	q := testutil.RandomQuery(ds, 1)

	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		bad   atomic.Int64
		total atomic.Int64
	)
	body, err := json.Marshal(map[string]any{"query": q, "k": 5})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Post(ts.URL+"/v1/knn", "application/json", bytes.NewReader(body))
				if err != nil {
					bad.Add(1)
					return
				}
				var kr KNNResponse
				decErr := json.NewDecoder(resp.Body).Decode(&kr)
				resp.Body.Close()
				if resp.StatusCode != 200 || decErr != nil || len(kr.Neighbors) != 5 {
					bad.Add(1)
					return
				}
				total.Add(1)
			}
		}()
	}
	for s := 0; s < 2; s++ {
		var sr SwapResponse
		if code := post(t, ts.URL+"/v1/swap", map[string]any{}, &sr); code != 200 {
			t.Errorf("swap %d: status %d", s, code)
		}
	}
	stop.Store(true)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d of %d queries failed during the swaps", bad.Load(), total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("no queries completed")
	}
	live.View(func(d *core.Dataset, idx core.Index) {
		testutil.CheckKNN(t, idx, d, q, 5)
	})
}

// TestAdmissionQueueRejects fills every in-flight slot and the whole
// queue, then checks the next request is shed with ErrOverloaded.
func TestAdmissionQueueRejects(t *testing.T) {
	adm := newAdmission(2, 1, obs.NewRegistry())
	ctx := context.Background()
	if err := adm.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := adm.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Both slots busy: one waiter is allowed...
	waited := make(chan error, 1)
	go func() { waited <- adm.acquire(ctx) }()
	for adm.waiting.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...the next is rejected immediately.
	if err := adm.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire: got %v, want ErrOverloaded", err)
	}
	adm.release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	s := adm.stats()
	if s.Rejected != 1 || s.Admitted != 3 || s.InFlight != 2 {
		t.Fatalf("admission stats: %+v", s)
	}
	// A queued client that gives up gets its context error.
	cctx, cancel := context.WithCancel(ctx)
	gone := make(chan error, 1)
	go func() { gone <- adm.acquire(cctx) }()
	for adm.waiting.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-gone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v", err)
	}
}

// TestAdmissionOverHTTP checks the 429 path end to end with a server of
// capacity one and no queue.
func TestAdmissionOverHTTP(t *testing.T) {
	srv, live, ts := newTestServer(t, 200, Options{MaxInFlight: 1, MaxQueue: 1})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	q := testutil.RandomQuery(ds, 1)

	// Occupy the only slot and the only queue seat out-of-band, then any
	// query must shed with 429.
	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- srv.adm.acquire(context.Background()) }()
	for srv.adm.waiting.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": 3}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429", code)
	}
	// Stats and health stay reachable under overload — they are exempt
	// from admission so operators can see what is happening.
	if code := get(t, ts.URL+"/v1/stats", nil); code != 200 {
		t.Fatalf("stats under overload: status %d", code)
	}
	srv.adm.release()
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	srv.adm.release()
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": 3}, nil); code != 200 {
		t.Fatalf("drained server: status %d, want 200", code)
	}
}

// TestStatsEndpoint drives traffic from two named clients and checks the
// per-endpoint and per-client accounting.
func TestStatsEndpoint(t *testing.T) {
	_, live, ts := newTestServer(t, 300, Options{})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })

	client := &http.Client{}
	for i := 0; i < 6; i++ {
		q, _ := json.Marshal(testutil.RandomQuery(ds, int64(i)))
		body, _ := json.Marshal(map[string]any{"query": json.RawMessage(q), "k": 4})
		req, _ := http.NewRequest("POST", ts.URL+"/v1/knn", bytes.NewReader(body))
		req.Header.Set("X-Client", fmt.Sprintf("tenant-%d", i%2))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var st StatsResponse
	if code := get(t, ts.URL+"/v1/stats", &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	ep := st.Endpoints["knn"]
	if ep.Count != 6 || ep.Errors != 0 || ep.CompDists <= 0 || ep.P50Micros <= 0 || ep.QPS <= 0 {
		t.Fatalf("knn endpoint stats: %+v", ep)
	}
	if ep.P95Micros < ep.P50Micros || ep.P99Micros < ep.P95Micros {
		t.Fatalf("percentiles out of order: %+v", ep)
	}
	for _, tenant := range []string{"tenant-0", "tenant-1"} {
		if c := st.Clients[tenant]; c.Count != 3 {
			t.Fatalf("client %s count = %d, want 3 (%+v)", tenant, c.Count, st.Clients)
		}
	}
	if st.Index.Name != "LAESA" || st.Index.Count != 300 {
		t.Fatalf("index stats: %+v", st.Index)
	}
	if st.Admission.Admitted != 6 || st.Admission.Rejected != 0 {
		t.Fatalf("admission stats: %+v", st.Admission)
	}
}

// TestBadRequests maps malformed inputs to 400s, never 500s.
func TestBadRequests(t *testing.T) {
	_, _, ts := newTestServer(t, 100, Options{})
	cases := []struct {
		path string
		body string
	}{
		{"/v1/range", `{"query": "not-a-vector", "radius": 1}`},
		{"/v1/range", `{"query": [1,2,3,4], "radius": -1}`},
		{"/v1/knn", `{"query": [1,2,3,4], "k": 0}`},
		{"/v1/knn", `{"bogus": true}`},
		{"/v1/batch", `{"type": "nope", "queries": [[1,2,3,4]]}`},
		{"/v1/batch", `{"type": "knn", "queries": [], "k": 3}`},
		{"/v1/insert", `{"object": 17}`},
		{"/v1/delete", `{"id": 99999}`},
		{"/v1/range", `not json`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %s: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
	if code := get(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
}

// TestWordDatasetOverHTTP checks the codec end to end on a string-object
// dataset (edit distance).
func TestWordDatasetOverHTTP(t *testing.T) {
	ds := testutil.WordDataset(200, 5)
	idx, err := laesaBuilder(ds)
	if err != nil {
		t.Fatal(err)
	}
	live := epoch.NewLive(ds, idx)
	srv, err := New(live, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := testutil.RandomQuery(ds, 2)
	var rr RangeResponse
	if code := post(t, ts.URL+"/v1/range", map[string]any{"query": q, "radius": 2.0}, &rr); code != 200 {
		t.Fatalf("word range: status %d", code)
	}
	want, err := live.RangeSearch(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr.IDs, normIDs(want)) {
		t.Fatalf("word answers differ: got %v want %v", rr.IDs, want)
	}
	var ir InsertResponse
	if code := post(t, ts.URL+"/v1/insert", map[string]string{"object": "zzzzzz"}, &ir); code != 200 {
		t.Fatalf("word insert: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/range", map[string]any{"query": "zzzzzz", "radius": 0.0}, &rr); code != 200 || !reflect.DeepEqual(rr.IDs, []int{ir.ID}) {
		t.Fatalf("inserted word not served: status %d ids %v", code, rr.IDs)
	}
}

// TestCacheOverHTTP enables the answer cache through Options.Cache and
// proves the full serving loop: repeated queries hit (visible in
// /v1/stats), hits equal direct calls, batches are served by the
// engine's pre-dispatch probe, and an insert invalidates everything.
func TestCacheOverHTTP(t *testing.T) {
	_, live, ts := newTestServer(t, 300, Options{Cache: &cache.Options{MaxBytes: 8 << 20}, Workers: 4})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	q := testutil.RandomQuery(ds, 21)
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}

	// Two identical kNN requests: the second must be a hit and byte-equal.
	var first, second KNNResponse
	if code := post(t, ts.URL+"/v1/knn", KNNRequest{Query: raw, K: 5}, &first); code != http.StatusOK {
		t.Fatalf("knn: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/knn", KNNRequest{Query: raw, K: 5}, &second); code != http.StatusOK {
		t.Fatalf("knn: status %d", code)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached answer differs: %+v vs %+v", first, second)
	}
	var direct []core.Neighbor
	live.View(func(_ *core.Dataset, idx core.Index) { direct, _ = idx.KNNSearch(q, 5) })
	for i, nb := range direct {
		if second.Neighbors[i].ID != nb.ID || second.Neighbors[i].Dist != nb.Dist {
			t.Fatalf("neighbor %d: served %+v, direct %+v", i, second.Neighbors[i], nb)
		}
	}

	// A repeated batch is served from cache before dispatch.
	raws := []json.RawMessage{raw, raw}
	var br BatchResponse
	if code := post(t, ts.URL+"/v1/batch", BatchRequest{Type: "knn", Queries: raws, K: 5}, &br); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if br.Stats.CacheHits != len(raws) {
		t.Fatalf("batch cache_hits = %d, want %d", br.Stats.CacheHits, len(raws))
	}

	var st StatsResponse
	if code := get(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if !st.Cache.Enabled || st.Cache.Hits == 0 || st.Cache.Entries == 0 {
		t.Fatalf("cache stats malformed: %+v", st.Cache)
	}
	if st.Cache.HitRate <= 0 || st.Cache.HitRate > 1 {
		t.Fatalf("hit rate %v out of range", st.Cache.HitRate)
	}

	// An insert bumps the epoch: the same request recomputes at the new
	// epoch and reports it.
	var ir InsertResponse
	if code := post(t, ts.URL+"/v1/insert", InsertRequest{Object: raw}, &ir); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	var third KNNResponse
	if code := post(t, ts.URL+"/v1/knn", KNNRequest{Query: raw, K: 5}, &third); code != http.StatusOK {
		t.Fatalf("knn: status %d", code)
	}
	if third.Epoch != ir.Epoch {
		t.Fatalf("post-insert answer at epoch %d, insert committed at %d", third.Epoch, ir.Epoch)
	}
	if third.Neighbors[0].ID != ir.ID || third.Neighbors[0].Dist != 0 {
		t.Fatalf("post-insert nearest = %+v, want the inserted object %d at 0", third.Neighbors[0], ir.ID)
	}

	// Stats without a cache stay zero-valued.
	_, _, plain := newTestServer(t, 100, Options{})
	var st2 StatsResponse
	if code := get(t, plain.URL+"/v1/stats", &st2); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st2.Cache.Enabled || st2.Cache.Hits != 0 {
		t.Fatalf("cacheless server reported cache stats: %+v", st2.Cache)
	}
}
