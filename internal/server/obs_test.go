package server

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/testutil"
)

// TestMetricsEndpoint: after real traffic, GET /metrics serves a
// Prometheus text exposition carrying a family per instrumented layer,
// and the numbers agree with /v1/stats — both are views over the same
// sources.
func TestMetricsEndpoint(t *testing.T) {
	_, live, ts := newTestServer(t, 300, Options{Cache: &cache.Options{MaxBytes: 1 << 20}})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })

	q := testutil.RandomQuery(ds, 1)
	for i := 0; i < 3; i++ {
		var kr KNNResponse
		if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": 5}, &kr); code != 200 {
			t.Fatalf("knn: status %d", code)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"mx_server_requests_total", "mx_server_request_seconds_bucket",
		"mx_server_admitted_total", "mx_server_inflight",
		"mx_compdists_total", "mx_index_epoch", "mx_index_objects",
		"mx_cache_hits_total", "mx_cache_entries",
		"mx_exec_batches_total", "mx_epoch_swaps_total",
		"mx_epoch_write_wait_seconds_count", "mx_store_page_reads_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %s", family)
		}
	}

	// Cross-check against /v1/stats: the admitted counter and the cache
	// hit counter must be the same numbers on both surfaces.
	var st StatsResponse
	if code := get(t, ts.URL+"/v1/stats", &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	// The stats request itself is admitted after the scrape, so allow it.
	admitted := scrapeValue(t, text, "mx_server_admitted_total")
	if admitted > float64(st.Admission.Admitted) || admitted <= 0 {
		t.Fatalf("metrics admitted %v, stats %d", admitted, st.Admission.Admitted)
	}
	if hits := scrapeValue(t, text, "mx_cache_hits_total"); hits != float64(st.Cache.Hits) {
		t.Fatalf("metrics cache hits %v, stats %d", hits, st.Cache.Hits)
	}
}

// scrapeValue pulls one unlabelled sample value out of an exposition.
func scrapeValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample for %s", name)
	return 0
}

// TestMetricsDisabled: DisableMetrics unmounts the scrape endpoint but
// the instrumentation (admission control shares the registry) keeps
// working.
func TestMetricsDisabled(t *testing.T) {
	_, live, ts := newTestServer(t, 100, Options{DisableMetrics: true})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	if code := get(t, ts.URL+"/metrics", nil); code != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics: status %d, want 404", code)
	}
	q := testutil.RandomQuery(ds, 2)
	var kr KNNResponse
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": 3}, &kr); code != 200 {
		t.Fatalf("knn: status %d", code)
	}
}

// TestTracedQuery: the trace flag returns a span timeline covering the
// request path without changing the answer, and the cache hit/miss
// paths produce their distinct span shapes.
func TestTracedQuery(t *testing.T) {
	_, live, ts := newTestServer(t, 300, Options{Cache: &cache.Options{MaxBytes: 1 << 20}})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	q := testutil.RandomQuery(ds, 3)
	const k = 6

	// First traced call misses the cache: full pipeline.
	var traced KNNResponse
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": k, "trace": true}, &traced); code != 200 {
		t.Fatalf("traced knn: status %d", code)
	}
	if traced.Trace == nil {
		t.Fatal("trace requested but response has none")
	}
	names := map[string]bool{}
	for _, sp := range traced.Trace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"admission_wait", "decode", "cache_probe", "read_wait", "read_section", "encode"} {
		if !names[want] {
			t.Errorf("miss-path trace lacks %q span: %v", want, traced.Trace.Spans)
		}
	}
	for _, sp := range traced.Trace.Spans {
		if sp.Name == "read_section" && sp.CompDists <= 0 {
			t.Errorf("read_section recorded %d compdists on an uncached query", sp.CompDists)
		}
	}

	// Untraced call: same answer, no trace, and (same epoch) a cache hit
	// on the entry the traced miss filled.
	var plain KNNResponse
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": k}, &plain); code != 200 {
		t.Fatalf("knn: status %d", code)
	}
	if plain.Trace != nil {
		t.Fatal("trace returned without being requested")
	}
	if !reflect.DeepEqual(traced.Neighbors, plain.Neighbors) || traced.Epoch != plain.Epoch {
		t.Fatalf("tracing changed the answer:\ntraced %v (epoch %d)\nplain  %v (epoch %d)",
			traced.Neighbors, traced.Epoch, plain.Neighbors, plain.Epoch)
	}
	st, ok := live.CacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("traced miss did not fill the cache: %+v", st)
	}

	// Second traced call hits the cache: probe span, no read section.
	var hit KNNResponse
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": k, "trace": true}, &hit); code != 200 {
		t.Fatalf("traced knn (hit): status %d", code)
	}
	hitNames := map[string]bool{}
	for _, sp := range hit.Trace.Spans {
		hitNames[sp.Name] = true
	}
	if !hitNames["cache_probe"] || hitNames["read_section"] {
		t.Fatalf("hit-path trace should probe the cache and skip the read section: %v", hit.Trace.Spans)
	}
	if !reflect.DeepEqual(hit.Neighbors, plain.Neighbors) {
		t.Fatalf("cached traced answer differs: %v vs %v", hit.Neighbors, plain.Neighbors)
	}

	// Range tracing follows the same contract.
	var rr RangeResponse
	if code := post(t, ts.URL+"/v1/range", map[string]any{"query": q, "radius": 25.0, "trace": true}, &rr); code != 200 {
		t.Fatalf("traced range: status %d", code)
	}
	if rr.Trace == nil || len(rr.Trace.Spans) == 0 {
		t.Fatal("traced range returned no spans")
	}
	wantIDs, err := live.RangeSearch(q, 25.0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr.IDs, normIDs(wantIDs)) {
		t.Fatalf("traced range answer differs: %v vs %v", rr.IDs, wantIDs)
	}
}

// TestSlowQueryLog: every admitted request at or over the threshold is
// logged with its endpoint and costs; a generous threshold logs nothing.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	_, live, ts := newTestServer(t, 200, Options{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLogf:      logf,
	})
	var ds *core.Dataset
	live.View(func(d *core.Dataset, _ core.Index) { ds = d })
	q := testutil.RandomQuery(ds, 4)
	var kr KNNResponse
	if code := post(t, ts.URL+"/v1/knn", map[string]any{"query": q, "k": 4}, &kr); code != 200 {
		t.Fatalf("knn: status %d", code)
	}
	mu.Lock()
	logged := append([]string(nil), lines...)
	mu.Unlock()
	if len(logged) == 0 {
		t.Fatal("threshold 1ns logged nothing")
	}
	found := false
	for _, ln := range logged {
		if strings.Contains(ln, "endpoint=knn") && strings.Contains(ln, "compdists=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no knn slow-query line with costs in %q", logged)
	}

	// Threshold zero disables the log entirely.
	var quiet []string
	_, live2, ts2 := newTestServer(t, 100, Options{
		SlowQueryLogf: func(format string, args ...any) {
			mu.Lock()
			quiet = append(quiet, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	var ds2 *core.Dataset
	live2.View(func(d *core.Dataset, _ core.Index) { ds2 = d })
	if code := post(t, ts2.URL+"/v1/knn", map[string]any{"query": testutil.RandomQuery(ds2, 5), "k": 3}, &kr); code != 200 {
		t.Fatalf("knn: status %d", code)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(quiet) != 0 {
		t.Fatalf("threshold 0 logged %q", quiet)
	}
}

// TestPProfMount: the profiler endpoints exist only when opted in.
func TestPProfMount(t *testing.T) {
	_, _, ts := newTestServer(t, 100, Options{PProf: true})
	if code := get(t, ts.URL+"/debug/pprof/", nil); code != 200 {
		t.Fatalf("GET /debug/pprof/ with PProf: status %d", code)
	}
	_, _, off := newTestServer(t, 100, Options{})
	if code := get(t, off.URL+"/debug/pprof/", nil); code == 200 {
		t.Fatal("pprof mounted without opting in")
	}
}
