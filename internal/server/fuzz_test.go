package server

import (
	"encoding/json"
	"testing"

	"metricindex/internal/core"
)

// FuzzDecodeQuery feeds arbitrary bytes through the server's JSON object
// codec against every prototype object type. The codec must never panic
// — malformed or mis-shaped input returns an error — and anything it
// accepts must be usable: a counted distance against the prototype (the
// first thing every handler does with a decoded query) and a round trip
// through encodeObject both have to succeed. Historically this caught
// the missing dimensionality validation: [1] against a 2-D dataset
// decoded fine and then panicked inside the metric.
func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte(`[1.5, 2.0]`))
	f.Add([]byte(`[1, 2]`))
	f.Add([]byte(`"fuzzy"`))
	f.Add([]byte(`[1]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"a": 1}`))
	f.Add([]byte(`[1e309]`))
	f.Add([]byte(`[2147483648, 0]`))
	protos := []struct {
		proto core.Object
		m     core.Metric
	}{
		{core.Vector{1, 2}, core.L2{}},
		{core.IntVector{1, 2}, core.IntLInf{}},
		{core.Word("ab"), core.Edit{}},
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, p := range protos {
			o, err := decodeObject(json.RawMessage(raw), p.proto)
			if err != nil {
				continue
			}
			if o == nil {
				t.Fatalf("decodeObject(%q, %T) returned nil object without error", raw, p.proto)
			}
			if d := p.m.Distance(o, p.proto); d < 0 {
				t.Fatalf("negative distance %v for decoded %v", d, o)
			}
			if _, err := encodeObject(o); err != nil {
				t.Fatalf("decoded object %v does not re-encode: %v", o, err)
			}
		}
	})
}
