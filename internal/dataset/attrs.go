package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"metricindex/internal/core"
)

// Attribute generation for the filtered (hybrid) search workloads: every
// object gets a small bag of typed fields whose marginal distributions
// are skewed the way production metadata is — a zipf-distributed
// category, a log-normal-ish price, a small integer stock count, and a
// sparse tag set. The skew matters: it makes selectivities span the
// whole planner range, so a filtered workload over a generated dataset
// exercises pre-, probe-, and post-filtering rather than collapsing
// onto one strategy.

// attrCategories is the category vocabulary; zipf rank order, so
// "alpha" dominates and the tail is rare (predicates on tail categories
// drive the pre-filter path, head categories the post-filter path).
var attrCategories = []string{
	"alpha", "beta", "gamma", "delta", "epsilon",
	"zeta", "eta", "theta", "iota", "kappa",
}

// attrTags is the tag vocabulary; each object carries 0–3 tags drawn
// without replacement.
var attrTags = []string{"new", "sale", "featured", "archived", "staff", "beta"}

// AttachAttrs generates a deterministic attribute bag for every live
// object of g's dataset (replacing any existing bags). The fields:
//
//	category string  zipf over attrCategories (s=1.3)
//	price    float   ~log-normal, median ≈ 20
//	stock    int     uniform 0..99
//	tags     tags    0–3 draws from attrTags (absent when empty)
//
// Generation is seeded independently of object generation so the same
// objects can carry different attribute populations across experiments.
func AttachAttrs(g *Generated, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(attrCategories)-1))
	for _, id := range g.Dataset.LiveIDs() {
		a := core.Attrs{
			"category": core.StringValue(attrCategories[zipf.Uint64()]),
			"price":    core.FloatValue(roundCents(20 * math.Exp(rng.NormFloat64()))),
			"stock":    core.IntValue(int64(rng.Intn(100))),
		}
		if tags := drawTags(rng); len(tags) > 0 {
			a["tags"] = core.TagsValue(tags...)
		}
		if err := g.Dataset.SetAttrs(id, a); err != nil {
			return fmt.Errorf("dataset: attrs for %d: %w", id, err)
		}
	}
	return nil
}

// drawTags picks 0–3 distinct tags; the count is skewed toward zero so
// tag predicates are selective.
func drawTags(rng *rand.Rand) []string {
	n := 0
	switch r := rng.Float64(); {
	case r < 0.45: // no tags
	case r < 0.80:
		n = 1
	case r < 0.95:
		n = 2
	default:
		n = 3
	}
	if n == 0 {
		return nil
	}
	perm := rng.Perm(len(attrTags))[:n]
	tags := make([]string, n)
	for i, j := range perm {
		tags[i] = attrTags[j]
	}
	return tags
}

func roundCents(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
