// Package dataset generates laptop-scale synthetic stand-ins for the four
// datasets of the paper's experimental study (§6.1, Table 2) and the query
// workloads run against them.
//
// The real LA / Words / Color datasets are not redistributable, so each
// generator reproduces the *properties* that drive index behaviour —
// dimensionality, intrinsic dimensionality (skew), distance function,
// value domain, and object size — per the substitution table in DESIGN.md.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"metricindex/internal/core"
)

// Kind names one of the four benchmark datasets.
type Kind string

// The four datasets of Table 2.
const (
	LA        Kind = "LA"        // 2-D locations, L2-norm
	Words     Kind = "Words"     // words, edit distance
	Color     Kind = "Color"     // 282-dim features, L1-norm
	Synthetic Kind = "Synthetic" // 20-dim integer vectors, L∞-norm
)

// AllKinds lists the datasets in the paper's order.
var AllKinds = []Kind{LA, Words, Color, Synthetic}

// Config controls generation.
type Config struct {
	// N is the number of database objects.
	N int
	// Queries is the number of held-out query objects (drawn from the
	// same distribution but not inserted into the dataset).
	Queries int
	// Seed makes generation deterministic.
	Seed int64
}

// Generated bundles a dataset with its query workload.
type Generated struct {
	Kind    Kind
	Dataset *core.Dataset
	Queries []core.Object
	// MaxDistance estimates d+ (the maximum pairwise distance), needed by
	// the M-index key mapping and the SPB-tree discretization.
	MaxDistance float64
}

// Generate builds the named dataset.
func Generate(kind Kind, cfg Config) (*Generated, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: non-positive N %d", cfg.N)
	}
	if cfg.Queries < 0 {
		return nil, fmt.Errorf("dataset: negative query count %d", cfg.Queries)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch kind {
	case LA:
		return genLA(cfg, rng), nil
	case Words:
		return genWords(cfg, rng), nil
	case Color:
		return genColor(cfg, rng), nil
	case Synthetic:
		return genSynthetic(cfg, rng), nil
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", kind)
	}
}

// genLA emulates the LA dataset: 2-D geographic locations with heavy
// clustering (a city's street grid), coordinates mapped to [0, 10000],
// compared with the L2-norm. Intrinsic dimensionality lands in the low
// single digits, like the paper's 5.4.
func genLA(cfg Config, rng *rand.Rand) *Generated {
	const dim = 2
	nClusters := 24
	centers := make([]core.Vector, nClusters)
	spreads := make([]float64, nClusters)
	for i := range centers {
		centers[i] = core.Vector{rng.Float64() * 10000, rng.Float64() * 10000}
		spreads[i] = 120 + rng.Float64()*900
	}
	sample := func() core.Object {
		if rng.Float64() < 0.12 { // background noise, keeps outliers around
			return core.Vector{rng.Float64() * 10000, rng.Float64() * 10000}
		}
		c := rng.Intn(nClusters)
		v := make(core.Vector, dim)
		for d := 0; d < dim; d++ {
			x := centers[c][d] + rng.NormFloat64()*spreads[c]
			v[d] = clamp(x, 0, 10000)
		}
		return v
	}
	return assemble(LA, cfg, core.L2{}, sample)
}

// genWords emulates the Words dataset: English-like words of length 1..34
// built from weighted syllables, compared with edit distance. The skewed
// syllable inventory yields the very low intrinsic dimensionality (≈1.2)
// the paper reports.
func genWords(cfg Config, rng *rand.Rand) *Generated {
	syllables := []string{
		"an", "ar", "as", "at", "ba", "be", "ca", "co", "con", "de", "di",
		"dis", "ed", "en", "er", "es", "ex", "fo", "in", "ing", "ion", "is",
		"it", "la", "le", "li", "lo", "ly", "ma", "me", "mo", "na", "ne",
		"no", "nt", "on", "or", "ou", "per", "pre", "pro", "ra", "re", "ri",
		"ro", "se", "si", "so", "st", "sta", "te", "ter", "ti", "tion", "to",
		"tra", "un", "ur", "us", "ve", "ver",
	}
	sample := func() core.Object {
		// Word length distribution with a heavy spread — many short
		// words, a tail of long compounds (lengths 1..34) — which gives
		// the edit-distance distribution the high variance (and hence
		// the very low intrinsic dimensionality ≈1.2) of Table 2.
		var b strings.Builder
		switch r := rng.Float64(); {
		case r < 0.06:
			b.WriteByte(byte('a' + rng.Intn(26)))
		case r < 0.40:
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				b.WriteString(syllables[skewIndex(rng, len(syllables))])
			}
		case r < 0.85:
			n := 2 + rng.Intn(4)
			for i := 0; i < n; i++ {
				b.WriteString(syllables[skewIndex(rng, len(syllables))])
			}
		default:
			n := 6 + rng.Intn(10)
			for i := 0; i < n; i++ {
				b.WriteString(syllables[skewIndex(rng, len(syllables))])
			}
		}
		w := b.String()
		if len(w) > 34 {
			w = w[:34]
		}
		return core.Word(w)
	}
	return assemble(Words, cfg, core.Edit{}, sample)
}

// genColor emulates the Color dataset: 282-dimensional MPEG-7 feature
// vectors with strong inter-dimension correlation (features are grouped
// descriptors), values mapped to [-255, 255], compared with the L1-norm.
func genColor(cfg Config, rng *rand.Rand) *Generated {
	const dim = 282
	const blocks = 6 // few latent factors => strong correlation, like MPEG-7 descriptors
	loadings := make([][]float64, dim)
	base := make([]float64, dim)
	for d := 0; d < dim; d++ {
		loadings[d] = make([]float64, blocks)
		b := d * blocks / dim
		loadings[d][b] = 0.9 + rng.Float64()*0.4
		loadings[d][(b+1)%blocks] = rng.Float64() * 0.3
		base[d] = rng.Float64()*200 - 100
	}
	sample := func() core.Object {
		factors := make([]float64, blocks)
		for b := range factors {
			factors[b] = rng.NormFloat64() * 80
		}
		v := make(core.Vector, dim)
		for d := 0; d < dim; d++ {
			x := base[d]
			for b := 0; b < blocks; b++ {
				x += loadings[d][b] * factors[b]
			}
			x += rng.NormFloat64() * 12
			v[d] = clamp(x, -255, 255)
		}
		return v
	}
	return assemble(Color, cfg, core.L1{}, sample)
}

// genSynthetic follows the paper's recipe exactly: 20 dimensions, the
// first five generated at random, the rest linear combinations of the
// first five; integer values in [0, 10000]; compared with the (discrete)
// L∞-norm so BKT and FQT apply.
func genSynthetic(cfg Config, rng *rand.Rand) *Generated {
	const dim = 20
	const free = 5
	coef := make([][]float64, dim-free)
	for i := range coef {
		coef[i] = make([]float64, free)
		var norm float64
		for j := range coef[i] {
			coef[i][j] = rng.Float64()
			norm += coef[i][j]
		}
		for j := range coef[i] {
			coef[i][j] /= norm
		}
	}
	sample := func() core.Object {
		v := make(core.IntVector, dim)
		f := make([]float64, free)
		for j := 0; j < free; j++ {
			f[j] = rng.Float64() * 10000
			v[j] = int32(f[j])
		}
		for i := 0; i < dim-free; i++ {
			var x float64
			for j := 0; j < free; j++ {
				x += coef[i][j] * f[j]
			}
			v[free+i] = int32(clamp(x, 0, 10000))
		}
		return v
	}
	return assemble(Synthetic, cfg, core.IntLInf{}, sample)
}

// assemble draws N database objects and Queries query objects and
// estimates the maximum pairwise distance from a sample.
func assemble(kind Kind, cfg Config, m core.Metric, sample func() core.Object) *Generated {
	objs := make([]core.Object, cfg.N)
	for i := range objs {
		objs[i] = sample()
	}
	qs := make([]core.Object, cfg.Queries)
	for i := range qs {
		qs[i] = sample()
	}
	ds := core.NewDataset(core.NewSpace(m), objs)
	return &Generated{
		Kind:        kind,
		Dataset:     ds,
		Queries:     qs,
		MaxDistance: estimateMaxDistance(m, objs),
	}
}

// estimateMaxDistance approximates d+ from a far-point walk plus random
// pairs, then pads by 10% so it upper-bounds unseen pairs. It uses the raw
// metric, not the counted space, because it is experiment setup.
func estimateMaxDistance(m core.Metric, objs []core.Object) float64 {
	if len(objs) == 0 {
		return 1
	}
	step := len(objs)/512 + 1
	far := objs[0]
	var best float64
	for iter := 0; iter < 3; iter++ {
		next := far
		for i := 0; i < len(objs); i += step {
			if d := m.Distance(far, objs[i]); d > best {
				best = d
				next = objs[i]
			}
		}
		far = next
	}
	return best * 1.1
}

// CalibrateRadius returns the range-query radius whose expected
// selectivity matches the requested fraction of the dataset (the paper's
// r = 4%..64% axis). It samples query-to-object distances with the raw
// metric (setup cost is not charged to compdists).
func CalibrateRadius(g *Generated, selectivity float64) float64 {
	m := g.Dataset.Space().Metric()
	// Sample over live identifiers, not raw slots: a sparse dataset (a
	// shard mirror, or one with many deletions) can alias a slot stride
	// onto nothing but empty slots.
	ids := g.Dataset.LiveIDs()
	if len(ids) == 0 {
		return 0
	}
	qs := g.Queries
	if len(qs) == 0 {
		for _, id := range ids[:min(len(ids), 16)] {
			qs = append(qs, g.Dataset.Object(id))
		}
	}
	stepQ := len(qs)/16 + 1
	stepO := len(ids)/512 + 1
	var dists []float64
	for qi := 0; qi < len(qs); qi += stepQ {
		for oi := 0; oi < len(ids); oi += stepO {
			dists = append(dists, m.Distance(qs[qi], g.Dataset.Object(ids[oi])))
		}
	}
	sort.Float64s(dists)
	idx := int(selectivity * float64(len(dists)))
	if idx >= len(dists) {
		idx = len(dists) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return dists[idx]
}

// IntrinsicDimensionality estimates ρ = μ²/(2σ²) from sampled pairwise
// distances, the statistic of Table 2.
func IntrinsicDimensionality(g *Generated) float64 {
	m := g.Dataset.Space().Metric()
	objs := g.Dataset.Objects()
	rng := rand.New(rand.NewSource(1))
	n := len(objs)
	pairs := min(20000, n*(n-1)/2)
	var sum, sumSq float64
	for i := 0; i < pairs; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		d := m.Distance(objs[a], objs[b])
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(pairs)
	varr := sumSq/float64(pairs) - mean*mean
	if varr <= 0 {
		return math.Inf(1)
	}
	return mean * mean / (2 * varr)
}

// skewIndex draws an index in [0,n) with a Zipf-ish skew favouring low
// indices, giving the syllable inventory a natural-language frequency
// profile.
func skewIndex(rng *rand.Rand, n int) int {
	x := rng.Float64()
	return int(x * x * float64(n))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
