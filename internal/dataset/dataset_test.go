package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"metricindex/internal/core"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range AllKinds {
		g, err := Generate(kind, Config{N: 500, Queries: 10, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.Dataset.Count() != 500 {
			t.Fatalf("%s: count=%d", kind, g.Dataset.Count())
		}
		if len(g.Queries) != 10 {
			t.Fatalf("%s: queries=%d", kind, len(g.Queries))
		}
		if g.MaxDistance <= 0 {
			t.Fatalf("%s: d+=%v", kind, g.MaxDistance)
		}
		// Every pairwise sample must respect the estimated d+ (it is
		// padded, so strictly larger samples indicate a bug).
		m := g.Dataset.Space().Metric()
		objs := g.Dataset.Objects()
		for i := 0; i < 200; i++ {
			d := m.Distance(objs[i], objs[(i*7+3)%500])
			if d > g.MaxDistance {
				t.Fatalf("%s: sampled distance %v exceeds d+ %v", kind, d, g.MaxDistance)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(LA, Config{N: 100, Queries: 2, Seed: 9})
	b, _ := Generate(LA, Config{N: 100, Queries: 2, Seed: 9})
	m := a.Dataset.Space().Metric()
	for i := 0; i < 100; i++ {
		if m.Distance(a.Dataset.Object(i), b.Dataset.Object(i)) != 0 {
			t.Fatalf("object %d differs across identical seeds", i)
		}
	}
	c, _ := Generate(LA, Config{N: 100, Queries: 2, Seed: 10})
	same := 0
	for i := 0; i < 100; i++ {
		if m.Distance(a.Dataset.Object(i), c.Dataset.Object(i)) == 0 {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produced %d identical objects", same)
	}
}

func TestGenerateShapes(t *testing.T) {
	la, _ := Generate(LA, Config{N: 50, Queries: 1, Seed: 1})
	if v := la.Dataset.Object(0).(core.Vector); len(v) != 2 {
		t.Fatalf("LA dim=%d", len(v))
	}
	color, _ := Generate(Color, Config{N: 20, Queries: 1, Seed: 1})
	if v := color.Dataset.Object(0).(core.Vector); len(v) != 282 {
		t.Fatalf("Color dim=%d", len(v))
	}
	for _, x := range color.Dataset.Object(0).(core.Vector) {
		if x < -255 || x > 255 {
			t.Fatalf("Color value %v outside [-255,255]", x)
		}
	}
	syn, _ := Generate(Synthetic, Config{N: 50, Queries: 1, Seed: 1})
	v := syn.Dataset.Object(0).(core.IntVector)
	if len(v) != 20 {
		t.Fatalf("Synthetic dim=%d", len(v))
	}
	for _, x := range v {
		if x < 0 || x > 10000 {
			t.Fatalf("Synthetic value %d outside [0,10000]", x)
		}
	}
	words, _ := Generate(Words, Config{N: 200, Queries: 1, Seed: 1})
	for _, id := range words.Dataset.LiveIDs() {
		w := string(words.Dataset.Object(id).(core.Word))
		if len(w) < 1 || len(w) > 34 {
			t.Fatalf("word length %d outside 1..34", len(w))
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("Bogus", Config{N: 10}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := Generate(LA, Config{N: 0}); err == nil {
		t.Fatal("N=0 must fail")
	}
	if _, err := Generate(LA, Config{N: 5, Queries: -1}); err == nil {
		t.Fatal("negative queries must fail")
	}
}

func TestCalibrateRadiusMonotone(t *testing.T) {
	g, _ := Generate(LA, Config{N: 2000, Queries: 8, Seed: 3})
	r4 := CalibrateRadius(g, 0.04)
	r16 := CalibrateRadius(g, 0.16)
	r64 := CalibrateRadius(g, 0.64)
	if !(r4 < r16 && r16 < r64) {
		t.Fatalf("radii not monotone: %v %v %v", r4, r16, r64)
	}
	// The 16% radius must actually return roughly 16% of the dataset.
	got := len(core.BruteForceRange(g.Dataset, g.Queries[0], r16))
	frac := float64(got) / float64(g.Dataset.Count())
	if frac < 0.02 || frac > 0.6 {
		t.Fatalf("16%% radius returned %.1f%% of objects", frac*100)
	}
}

func TestIntrinsicDimensionalityOrdering(t *testing.T) {
	words, _ := Generate(Words, Config{N: 1500, Queries: 1, Seed: 5})
	la, _ := Generate(LA, Config{N: 1500, Queries: 1, Seed: 5})
	wID := IntrinsicDimensionality(words)
	laID := IntrinsicDimensionality(la)
	// Table 2: Words has by far the lowest intrinsic dimensionality.
	if wID >= laID {
		t.Fatalf("Words intrinsic dim %.2f should be below LA %.2f", wID, laID)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range AllKinds {
		g, err := Generate(kind, Config{N: 120, Queries: 5, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, string(kind)+".midx")
		if err := Save(path, g); err != nil {
			t.Fatalf("Save(%s): %v", kind, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", kind, err)
		}
		if got.Kind != kind || got.Dataset.Count() != 120 || len(got.Queries) != 5 {
			t.Fatalf("%s: loaded %s/%d/%d", kind, got.Kind, got.Dataset.Count(), len(got.Queries))
		}
		if got.MaxDistance != g.MaxDistance {
			t.Fatalf("%s: d+ %v != %v", kind, got.MaxDistance, g.MaxDistance)
		}
		m := g.Dataset.Space().Metric()
		for i := 0; i < 120; i++ {
			if m.Distance(g.Dataset.Object(i), got.Dataset.Object(i)) != 0 {
				t.Fatalf("%s: object %d changed in round trip", kind, i)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.midx")
	os.WriteFile(bad, []byte("not a midx file"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := Load(filepath.Join(dir, "missing.midx")); err == nil {
		t.Fatal("missing file must fail")
	}
}

// TestCalibrateRadiusSparseDataset is the regression test for the slot
// stride aliasing onto deleted slots: with two of every three ids empty
// (a shard mirror's shape), calibration used to sample zero distances and
// panic indexing into an empty slice.
func TestCalibrateRadiusSparseDataset(t *testing.T) {
	g, err := Generate(LA, Config{N: 1500, Queries: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 1500; id++ {
		if id%3 != 1 {
			if err := g.Dataset.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	r1, r2 := CalibrateRadius(g, 0.04), CalibrateRadius(g, 0.5)
	if r1 <= 0 || r2 <= r1 {
		t.Fatalf("sparse calibration not monotone positive: %v, %v", r1, r2)
	}
	// No queries: probes fall back to live objects, never nil slots.
	g.Queries = nil
	if r := CalibrateRadius(g, 0.1); r <= 0 {
		t.Fatalf("query-less sparse calibration returned %v", r)
	}
}

// TestSaveLoadAttrsRoundTrip covers the MIDX2 attrs section: generated
// bags must survive the file byte-for-bag, and a file without bags must
// still carry the MIDX1 magic so older tools keep reading it.
func TestSaveLoadAttrsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g, err := Generate(LA, Config{N: 200, Queries: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachAttrs(g, 99); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "attrs.midx")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:5]) != "MIDX2" {
		t.Fatalf("attrs dataset saved with magic %q, want MIDX2", raw[:5])
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	withAttrs := 0
	for _, id := range g.Dataset.LiveIDs() {
		want := g.Dataset.Attrs(id)
		if len(want) > 0 {
			withAttrs++
		}
		if !got.Dataset.Attrs(id).Equal(want) {
			t.Fatalf("attrs of %d changed in round trip: %v != %v", id, got.Dataset.Attrs(id), want)
		}
	}
	if withAttrs == 0 {
		t.Fatal("AttachAttrs left every object bare")
	}

	// Attribute-less datasets must keep the v1 magic.
	plain, err := Generate(LA, Config{N: 50, Queries: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plainPath := filepath.Join(dir, "plain.midx")
	if err := Save(plainPath, plain); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:5]) != "MIDX1" {
		t.Fatalf("plain dataset saved with magic %q, want MIDX1", raw[:5])
	}
}

// TestAttachAttrsDeterministic: same seed, same bags.
func TestAttachAttrsDeterministic(t *testing.T) {
	a, _ := Generate(Words, Config{N: 80, Queries: 1, Seed: 3})
	b, _ := Generate(Words, Config{N: 80, Queries: 1, Seed: 3})
	if err := AttachAttrs(a, 7); err != nil {
		t.Fatal(err)
	}
	if err := AttachAttrs(b, 7); err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Dataset.LiveIDs() {
		if !a.Dataset.Attrs(id).Equal(b.Dataset.Attrs(id)) {
			t.Fatalf("attrs of %d differ across identical seeds", id)
		}
	}
}
