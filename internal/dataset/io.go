package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"metricindex/internal/core"
	"metricindex/internal/store"
)

// File format (little endian):
//
//	magic "MIDX1" | kindLen u8, kind | maxDistance f64 |
//	nObjects u32, objects... | nQueries u32, queries...
//
// MIDX2 appends one section for the attribute bags of filtered search:
//
//	... | nAttrs u32, (id u32, attrs)...
//
// where id is the object's position in the objects section (= its
// identifier after Load) and attrs uses the store attrs codec. Only
// objects with a non-empty bag appear. Save emits MIDX2 only when at
// least one bag exists, so attribute-less datasets stay byte-identical
// to MIDX1 and readable by older tools; Load accepts both magics.
//
// Objects use the store codec. The metric is implied by the kind.
const (
	magic   = "MIDX1"
	magicV2 = "MIDX2"
)

// Save writes a generated dataset (objects + query workload) to a file.
func Save(path string, g *Generated) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ids := g.Dataset.LiveIDs()
	// Positions (= post-Load identifiers) of objects carrying attrs; a
	// non-empty list upgrades the file to MIDX2.
	var withAttrs []int
	for pos, id := range ids {
		if len(g.Dataset.Attrs(id)) > 0 {
			withAttrs = append(withAttrs, pos)
		}
	}
	mag := magic
	if len(withAttrs) > 0 {
		mag = magicV2
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(mag); err != nil {
		return err
	}
	if err := w.WriteByte(byte(len(g.Kind))); err != nil {
		return err
	}
	if _, err := w.WriteString(string(g.Kind)); err != nil {
		return err
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.MaxDistance))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Dataset.Count()))
	for _, id := range ids {
		buf = store.EncodeObject(buf, g.Dataset.Object(id))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.Queries)))
	for _, q := range g.Queries {
		buf = store.EncodeObject(buf, q)
	}
	if len(withAttrs) > 0 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(withAttrs)))
		for _, pos := range withAttrs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(pos))
			buf = store.EncodeAttrs(buf, g.Dataset.Attrs(ids[pos]))
		}
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return w.Flush()
}

// MetricFor returns the distance function of a dataset kind (Table 2).
func MetricFor(kind Kind) (core.Metric, error) {
	switch kind {
	case LA:
		return core.L2{}, nil
	case Words:
		return core.Edit{}, nil
	case Color:
		return core.L1{}, nil
	case Synthetic:
		return core.IntLInf{}, nil
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", kind)
	}
}

// Load reads a dataset written by Save.
func Load(path string) (*Generated, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(magic)+1 {
		return nil, fmt.Errorf("dataset: %s is not a %s file", path, magic)
	}
	mag := string(raw[:len(magic)])
	if mag != magic && mag != magicV2 {
		return nil, fmt.Errorf("dataset: %s is not a %s file", path, magic)
	}
	raw = raw[len(magic):]
	kindLen := int(raw[0])
	if len(raw) < 1+kindLen+12 {
		return nil, io.ErrUnexpectedEOF
	}
	kind := Kind(raw[1 : 1+kindLen])
	raw = raw[1+kindLen:]
	m, err := MetricFor(kind)
	if err != nil {
		return nil, err
	}
	maxD := math.Float64frombits(binary.LittleEndian.Uint64(raw))
	n := int(binary.LittleEndian.Uint32(raw[8:]))
	raw = raw[12:]
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		o, used, err := store.DecodeObject(raw)
		if err != nil {
			return nil, fmt.Errorf("dataset: object %d: %w", i, err)
		}
		objs = append(objs, o)
		raw = raw[used:]
	}
	if len(raw) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	nq := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	qs := make([]core.Object, 0, nq)
	for i := 0; i < nq; i++ {
		q, used, err := store.DecodeObject(raw)
		if err != nil {
			return nil, fmt.Errorf("dataset: query %d: %w", i, err)
		}
		qs = append(qs, q)
		raw = raw[used:]
	}
	ds := core.NewDataset(core.NewSpace(m), objs)
	if mag == magicV2 {
		if len(raw) < 4 {
			return nil, io.ErrUnexpectedEOF
		}
		na := int(binary.LittleEndian.Uint32(raw))
		raw = raw[4:]
		for i := 0; i < na; i++ {
			if len(raw) < 4 {
				return nil, io.ErrUnexpectedEOF
			}
			id := int(binary.LittleEndian.Uint32(raw))
			raw = raw[4:]
			a, used, err := store.DecodeAttrs(raw)
			if err != nil {
				return nil, fmt.Errorf("dataset: attrs %d: %w", i, err)
			}
			raw = raw[used:]
			if err := ds.SetAttrs(id, a); err != nil {
				return nil, fmt.Errorf("dataset: attrs %d: %w", i, err)
			}
		}
	}
	return &Generated{
		Kind:        kind,
		Dataset:     ds,
		Queries:     qs,
		MaxDistance: maxD,
	}, nil
}
