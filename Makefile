# Same commands CI runs (.github/workflows/ci.yml) — keep them in sync.

GO ?= go

# Packages with a parallel build, the concurrent query engine, or the
# update/query synchronization layer: the race-detector gate of `make race`.
RACE_PKGS = ./internal/exec/... ./internal/epoch/... ./internal/server/... \
            ./internal/shard/... ./internal/table/... ./internal/mvpt/... \
            ./internal/ept/... ./internal/cpt/... ./internal/omni/... \
            ./internal/core/... ./internal/store/... ./internal/bench/... .

# The example programs CI runs end to end so example rot fails the
# pipeline (each finishes in well under a second).
EXAMPLES = ./examples/quickstart ./examples/wordsearch ./examples/geosearch \
           ./examples/imagesearch

.PHONY: all build test race bench fmt vet examples serve-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=BenchmarkBatchVsSequential -benchtime=2x -run=^$$ .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

examples:
	@for e in $(EXAMPLES); do \
		echo "run $$e"; \
		$(GO) run $$e >/dev/null || exit 1; \
	done

# Boot mserve on a generated dataset and exercise every endpoint plus a
# live index swap, verifying each answer against the direct index call
# and a linear scan (the same check msearch -verify runs, which also
# gates the dataset first).
serve-smoke:
	$(GO) run ./cmd/datagen -kind LA -n 3000 -queries 10 -out /tmp/mserve-smoke.midx
	$(GO) run ./cmd/msearch -data /tmp/mserve-smoke.midx -index LAESA -k 5 -verify >/dev/null
	$(GO) run ./cmd/mserve -data /tmp/mserve-smoke.midx -index LAESA -smoke
	$(GO) run ./cmd/mserve -data /tmp/mserve-smoke.midx -index SPB-tree -shards 2 -smoke

ci: build vet fmt test race examples serve-smoke
