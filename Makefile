# Same commands CI runs (.github/workflows/ci.yml) — keep them in sync.

GO ?= go

# Packages with a parallel build or the concurrent query engine: the
# race-detector gate of `make race`.
RACE_PKGS = ./internal/exec/... ./internal/table/... ./internal/ept/... \
            ./internal/cpt/... ./internal/omni/... ./internal/core/... \
            ./internal/store/... ./internal/bench/... .

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=BenchmarkBatchVsSequential -benchtime=2x -run=^$$ .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race
