# Same commands CI runs (.github/workflows/ci.yml) — keep them in sync.

GO ?= go

# The benchmark selection `make bench` runs, overridable so CI can widen
# the run without editing this file:
#   make bench BENCH='BenchmarkBatchVsSequential|BenchmarkCacheHitMiss' BENCHTIME=5x
BENCH ?= BenchmarkBatchVsSequential
BENCHTIME ?= 2x

# Pinned staticcheck release, shared by `make staticcheck` and the CI
# step (bump both by changing only this line).
STATICCHECK_VERSION ?= 2025.1.1

# Pinned govulncheck release for `make govulncheck` (known-vulnerability
# scan of the module and its stdlib usage).
GOVULNCHECK_VERSION ?= v1.1.4

# Pinned golang.org/x/tools release for the extra vet-style analyzers
# (nilness, shadow) that plain `go vet` does not run.
XTOOLS_VERSION ?= v0.30.0

# Tolerated q/s regression fraction of the bench gate.
MAX_REGRESS ?= 0.25

# Seconds each native fuzz target runs in the `make fuzz` smoke (six
# targets: FuzzLevenshtein, FuzzBatchKernels, FuzzDecodeQuery,
# FuzzSnapshotHeader, FuzzPredicateParse, FuzzPredicateEval).
FUZZTIME ?= 10s

# Packages with a parallel build, the concurrent query engine, the
# update/query synchronization layer, the answer cache, or the shared
# scratch pools of the batched kernel paths: the race-detector gate of
# `make race`.
RACE_PKGS = ./internal/exec/... ./internal/epoch/... ./internal/server/... \
            ./internal/shard/... ./internal/table/... ./internal/mvpt/... \
            ./internal/ept/... ./internal/cpt/... ./internal/omni/... \
            ./internal/core/... ./internal/store/... ./internal/bench/... \
            ./internal/cache/... ./internal/bkt/... ./internal/fqt/... \
            ./internal/mtree/... ./internal/pmtree/... ./internal/persist/... \
            ./internal/bptree/... ./internal/rtree/... ./internal/spb/... \
            ./internal/mindex/... ./internal/pivot/... ./internal/dataset/... \
            ./internal/obs/... ./internal/plan/... .

# The example programs CI runs end to end so example rot fails the
# pipeline (each finishes in well under a second).
EXAMPLES = ./examples/quickstart ./examples/wordsearch ./examples/geosearch \
           ./examples/imagesearch ./examples/cachedsearch

.PHONY: all build test race fuzz bench bench-json bench-baseline bench-gate \
        staticcheck govulncheck lint fmt vet examples serve-smoke load-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Short native-fuzzing smoke: each target fuzzes for FUZZTIME (Go allows
# one -fuzz target per invocation, hence one run each).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLevenshtein -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzBatchKernels -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzDecodeQuery -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotHeader -fuzztime=$(FUZZTIME) ./internal/persist
	$(GO) test -run='^$$' -fuzz=FuzzPredicateParse -fuzztime=$(FUZZTIME) ./internal/plan
	$(GO) test -run='^$$' -fuzz=FuzzPredicateEval -fuzztime=$(FUZZTIME) ./internal/plan

bench:
	$(GO) test -bench='$(BENCH)' -benchtime=$(BENCHTIME) -run=^$$ .

# Machine-readable throughput measurements (cmd/benchjson): BENCH_PR.json
# is what the CI bench job uploads and gates against the committed
# BENCH_BASELINE.json. Refresh the baseline with `make bench-baseline`
# when the CI runner class (or a deliberate perf change) moves the floor.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR.json

bench-baseline:
	$(GO) run ./cmd/benchjson -out BENCH_BASELINE.json

bench-gate: bench-json
	$(GO) run ./cmd/benchjson -baseline BENCH_BASELINE.json \
		-current BENCH_PR.json -max-regress $(MAX_REGRESS)

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# The repo's own static-analysis suite (internal/analysis, run by
# cmd/metriclint): epoch lock-section discipline, wire-codec symmetry +
# frozen on-disk constants, noalloc hot-path annotations, and error
# consumption in the durability packages. Pure stdlib — runs offline.
# See docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/metriclint ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# go vet plus the x/tools analyzers it does not include: nilness (nil
# dereference paths) and shadow (shadowed variable rebinding). The extra
# analyzers download x/tools on first run, like staticcheck.
vet:
	$(GO) vet ./...
	$(GO) run golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness@$(XTOOLS_VERSION) ./...
	$(GO) run golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow@$(XTOOLS_VERSION) ./...

examples:
	@for e in $(EXAMPLES); do \
		echo "run $$e"; \
		$(GO) run $$e >/dev/null || exit 1; \
	done

# Boot mserve on a generated dataset and exercise every endpoint plus a
# live index swap, verifying each answer against the direct index call
# and a linear scan (the same check msearch -verify runs, which also
# gates the dataset first). The last two legs prove durability: the
# first -data-dir run builds, snapshots, and journals; the second must
# restore from disk without rebuilding (-require-restore fails the boot
# otherwise) and still pass every smoke check.
serve-smoke:
	$(GO) run ./cmd/datagen -kind LA -n 3000 -queries 10 -out /tmp/mserve-smoke.midx
	$(GO) run ./cmd/msearch -data /tmp/mserve-smoke.midx -index LAESA -k 5 -verify >/dev/null
	$(GO) run ./cmd/mserve -data /tmp/mserve-smoke.midx -index LAESA -smoke
	$(GO) run ./cmd/mserve -data /tmp/mserve-smoke.midx -index SPB-tree -shards 2 -smoke
	rm -rf /tmp/mserve-smoke-state
	$(GO) run ./cmd/mserve -data /tmp/mserve-smoke.midx -index LAESA -smoke \
		-data-dir /tmp/mserve-smoke-state
	$(GO) run ./cmd/mserve -data /tmp/mserve-smoke.midx -index LAESA -smoke \
		-data-dir /tmp/mserve-smoke-state -require-restore

# Production load harness smoke: generate an attributed dataset, boot
# mserve on a loopback port, and drive a short loadgen ramp that must
# finish error-free with nonzero filtered throughput and all three
# planner strategies (pre/probe/post) chosen at least once — the
# end-to-end proof of the filtered-search stack under concurrency.
# LAESA is deliberate: a probe-capable index is what lets the planner
# reach all three strategies. See docs/HYBRID.md.
LOADSMOKE_ADDR ?= 127.0.0.1:18099
load-smoke:
	$(GO) build -o /tmp/mx-loadsmoke-mserve ./cmd/mserve
	$(GO) build -o /tmp/mx-loadsmoke-loadgen ./cmd/loadgen
	$(GO) run ./cmd/datagen -kind LA -n 8000 -queries 200 -attrs -out /tmp/mx-loadsmoke.midx
	@/tmp/mx-loadsmoke-mserve -data /tmp/mx-loadsmoke.midx -index LAESA \
		-addr $(LOADSMOKE_ADDR) & SRV=$$!; \
	/tmp/mx-loadsmoke-loadgen -addr http://$(LOADSMOKE_ADDR) \
		-data /tmp/mx-loadsmoke.midx -ramp 4,16,32 -step 10s -assert \
		-out /tmp/mx-loadsmoke-report.json; \
	rc=$$?; kill $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; exit $$rc

# The full CI surface: the test and lint jobs' steps plus the bench
# job's gate (vet's extra analyzers, staticcheck, govulncheck and
# bench-gate need module downloads, so an offline run can cherry-pick
# the other targets individually — lint itself is pure stdlib).
ci: build vet fmt lint staticcheck govulncheck test race fuzz examples serve-smoke load-smoke bench-gate
