# Same commands CI runs (.github/workflows/ci.yml) — keep them in sync.

GO ?= go

# Packages with a parallel build or the concurrent query engine: the
# race-detector gate of `make race`.
RACE_PKGS = ./internal/exec/... ./internal/shard/... ./internal/table/... \
            ./internal/ept/... ./internal/cpt/... ./internal/omni/... \
            ./internal/core/... ./internal/store/... ./internal/bench/... .

# The example programs CI runs end to end so example rot fails the
# pipeline (each finishes in well under a second).
EXAMPLES = ./examples/quickstart ./examples/wordsearch ./examples/geosearch \
           ./examples/imagesearch

.PHONY: all build test race bench fmt vet examples ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=BenchmarkBatchVsSequential -benchtime=2x -run=^$$ .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

examples:
	@for e in $(EXAMPLES); do \
		echo "run $$e"; \
		$(GO) run $$e >/dev/null || exit 1; \
	done

ci: build vet fmt test race examples
