package metricindex_test

// Integration tests over the public API: every index constructor is
// exercised on every compatible benchmark dataset and must return exactly
// the brute-force answer for MRQ and MkNNQ — the correctness contract the
// paper's comparison rests on.

import (
	"math"
	"testing"

	"metricindex"
)

// buildAll constructs every index the public API offers for the dataset.
func buildAll(t *testing.T, gen *metricindex.BenchmarkDataset) map[string]metricindex.Index {
	t.Helper()
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 4, 3)
	if err != nil {
		t.Fatalf("SelectPivots: %v", err)
	}
	disk := metricindex.DiskOptions{}
	// CPT and the PM-tree store objects inside tree nodes, so
	// high-dimensional data needs the paper's 40 KB page (§6.1).
	bigDisk := disk
	if gen.Kind == metricindex.DatasetColor || gen.Kind == metricindex.DatasetSynthetic {
		bigDisk.PageSize = metricindex.LargePageSize
	}
	out := map[string]metricindex.Index{}
	add := func(name string, idx metricindex.Index, err error) {
		if err != nil {
			t.Fatalf("New%s: %v", name, err)
		}
		out[name] = idx
	}
	{
		idx, err := metricindex.NewLAESA(ds, pivots)
		add("LAESA", idx, err)
	}
	{
		idx, err := metricindex.NewAESA(ds)
		add("AESA", idx, err)
	}
	{
		idx, err := metricindex.NewEPT(ds, metricindex.EPTOptions{L: 4, Radius: gen.MaxDistance / 10, Seed: 3})
		add("EPT", idx, err)
	}
	{
		idx, err := metricindex.NewEPTStar(ds, metricindex.EPTOptions{L: 4, Seed: 3})
		add("EPT*", idx, err)
	}
	{
		idx, err := metricindex.NewCPT(ds, pivots, bigDisk)
		add("CPT", idx, err)
	}
	if ds.Space().Metric().Discrete() {
		idx, err := metricindex.NewBKT(ds, metricindex.TreeOptions{MaxDistance: gen.MaxDistance, Seed: 3})
		add("BKT", idx, err)
		idx, err = metricindex.NewFQT(ds, pivots, metricindex.TreeOptions{MaxDistance: gen.MaxDistance})
		add("FQT", idx, err)
		idx, err = metricindex.NewFQA(ds, pivots)
		add("FQA", idx, err)
	}
	{
		idx, err := metricindex.NewMVPT(ds, pivots, metricindex.TreeOptions{})
		add("MVPT", idx, err)
	}
	{
		idx, err := metricindex.NewMVPT(ds, pivots, metricindex.TreeOptions{Arity: 2})
		add("VPT", idx, err)
	}
	{
		idx, err := metricindex.NewPMTree(ds, pivots, bigDisk)
		add("PM-tree", idx, err)
	}
	{
		idx, err := metricindex.NewOmniRTree(ds, pivots, metricindex.OmniOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance})
		add("OmniR-tree", idx, err)
	}
	{
		idx, err := metricindex.NewOmniSeqFile(ds, pivots, disk)
		add("Omni-seq", idx, err)
	}
	{
		idx, err := metricindex.NewOmniBPlus(ds, pivots, disk)
		add("OmniB+", idx, err)
	}
	{
		idx, err := metricindex.NewMIndex(ds, pivots, metricindex.MIndexOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance, MaxNum: 64})
		add("M-index", idx, err)
	}
	{
		idx, err := metricindex.NewMIndexStar(ds, pivots, metricindex.MIndexOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance, MaxNum: 64})
		add("M-index*", idx, err)
	}
	{
		idx, err := metricindex.NewSPBTree(ds, pivots, metricindex.SPBOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance})
		add("SPB-tree", idx, err)
	}
	return out
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllIndexesAllDatasets(t *testing.T) {
	kinds := []metricindex.DatasetKind{
		metricindex.DatasetLA, metricindex.DatasetWords,
		metricindex.DatasetColor, metricindex.DatasetSynthetic,
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := 400
			if kind == metricindex.DatasetColor {
				n = 150 // 282-dim objects; keep the matrix tests quick
			}
			gen, err := metricindex.GenerateDataset(kind, n, 3, 7)
			if err != nil {
				t.Fatal(err)
			}
			ds := gen.Dataset
			indexes := buildAll(t, gen)
			if len(indexes) < 13 {
				t.Fatalf("expected at least 13 indexes, built %d", len(indexes))
			}
			for _, q := range gen.Queries {
				for _, sel := range []float64{0.01, 0.1, 0.5} {
					r := metricindex.CalibrateRadius(gen, sel)
					want := metricindex.BruteForceRange(ds, q, r)
					for name, idx := range indexes {
						got, err := idx.RangeSearch(q, r)
						if err != nil {
							t.Fatalf("%s RangeSearch: %v", name, err)
						}
						if !sameIDs(got, want) {
							t.Errorf("%s: MRQ(r=%.3g) returned %d ids, brute force %d", name, r, len(got), len(want))
						}
					}
				}
				for _, k := range []int{1, 10, 60} {
					want := metricindex.BruteForceKNN(ds, q, k)
					for name, idx := range indexes {
						got, err := idx.KNNSearch(q, k)
						if err != nil {
							t.Fatalf("%s KNNSearch: %v", name, err)
						}
						if len(got) != len(want) {
							t.Errorf("%s: MkNNQ(k=%d) returned %d, want %d", name, k, len(got), len(want))
							continue
						}
						for i := range got {
							if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
								t.Errorf("%s: MkNNQ(k=%d) rank %d distance %v, want %v",
									name, k, i, got[i].Dist, want[i].Dist)
								break
							}
						}
					}
				}
			}
		})
	}
}

func TestUpdatesKeepAllIndexesCorrect(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetSynthetic, 300, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	indexes := buildAll(t, gen)
	// Delete a batch, reinsert fresh objects, and re-verify everything.
	for id := 0; id < 300; id += 5 {
		for name, idx := range indexes {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("%s Delete(%d): %v", name, id, err)
			}
		}
		if err := ds.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		v := make(metricindex.IntVector, 20)
		for d := range v {
			v[d] = int32(100*i + d)
		}
		id := ds.Insert(v)
		for name, idx := range indexes {
			if err := idx.Insert(id); err != nil {
				t.Fatalf("%s Insert(%d): %v", name, id, err)
			}
		}
	}
	q := gen.Queries[0]
	r := metricindex.CalibrateRadius(gen, 0.1)
	want := metricindex.BruteForceRange(ds, q, r)
	wantKNN := metricindex.BruteForceKNN(ds, q, 12)
	for name, idx := range indexes {
		got, err := idx.RangeSearch(q, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameIDs(got, want) {
			t.Errorf("%s: post-update MRQ mismatch (%d vs %d)", name, len(got), len(want))
		}
		gotKNN, err := idx.KNNSearch(q, 12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(gotKNN) != len(wantKNN) || gotKNN[len(gotKNN)-1].Dist != wantKNN[len(wantKNN)-1].Dist {
			t.Errorf("%s: post-update MkNNQ mismatch", name)
		}
	}
}

func TestDiskIndexCacheControl(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 2000, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := metricindex.NewSPBTree(ds, pivots, metricindex.SPBOptions{MaxDistance: gen.MaxDistance})
	if err != nil {
		t.Fatal(err)
	}
	run := func() int64 {
		idx.ResetStats()
		for _, q := range gen.Queries {
			if _, err := idx.KNNSearch(q, 20); err != nil {
				t.Fatal(err)
			}
		}
		return idx.PageAccesses()
	}
	cold := run()
	idx.SetCacheBytes(metricindex.DefaultCacheBytes)
	warm := run()
	if warm >= cold {
		t.Fatalf("128KB cache should reduce kNN page accesses (cold %d, warm %d)", cold, warm)
	}
	idx.SetCacheBytes(0)
	uncached := run()
	if uncached != cold {
		t.Fatalf("disabling the cache should restore cold PA (got %d, want %d)", uncached, cold)
	}
}
