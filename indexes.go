package metricindex

import (
	"metricindex/internal/bkt"
	"metricindex/internal/cpt"
	"metricindex/internal/ept"
	"metricindex/internal/fqt"
	"metricindex/internal/mindex"
	"metricindex/internal/mvpt"
	"metricindex/internal/omni"
	"metricindex/internal/pivot"
	"metricindex/internal/pmtree"
	"metricindex/internal/spb"
	"metricindex/internal/store"
	"metricindex/internal/table"
)

// DiskOptions configures the simulated disk behind a disk-based index.
type DiskOptions struct {
	// PageSize in bytes; 4096 when zero (the paper's default). The paper
	// uses 40960 for CPT and the PM-tree on high-dimensional data (§6.1).
	PageSize int
	// CacheBytes sizes the LRU buffer cache; 0 disables it. The paper
	// enables a 128 KB cache for MkNNQ processing.
	CacheBytes int
}

// DefaultCacheBytes is the paper's 128 KB MkNNQ cache size.
const DefaultCacheBytes = store.DefaultCacheBytes

// LargePageSize is the 40 KB page the paper uses for CPT and the PM-tree
// on high-dimensional datasets.
const LargePageSize = store.LargePageSize

func (o DiskOptions) pager() *store.Pager {
	p := store.NewPager(o.PageSize)
	if o.CacheBytes > 0 {
		p.SetCacheBytes(o.CacheBytes)
	}
	return p
}

// DiskIndex is an Index bound to its simulated disk, exposing cache
// control (the paper toggles the 128 KB cache between experiments).
type DiskIndex struct {
	Index
	pager *store.Pager
}

// SetCacheBytes resizes the index's LRU buffer cache (0 disables it).
func (d *DiskIndex) SetCacheBytes(n int) { d.pager.SetCacheBytes(n) }

// DropCache empties the cache so a measurement starts cold.
func (d *DiskIndex) DropCache() { d.pager.DropCache() }

// Unwrap exposes the wrapped index, letting Save serialize the
// underlying structure (persist.Unwrapper).
func (d *DiskIndex) Unwrap() Index { return d.Index }

// NewAESA builds the O(n²) AESA table (§3.1) — exact but only viable for
// small datasets.
func NewAESA(ds *Dataset) (Index, error) { return table.NewAESA(ds) }

// NewLAESA builds the LAESA pivot table (§3.1) over the given pivots.
func NewLAESA(ds *Dataset, pivots []int) (Index, error) {
	return table.NewLAESA(ds, pivots)
}

// NewLAESAParallel builds the same LAESA table with the per-object
// distance precompute fanned out across workers goroutines (<= 0 uses
// GOMAXPROCS). The result is identical to NewLAESA; only wall-clock
// construction time changes.
func NewLAESAParallel(ds *Dataset, pivots []int, workers int) (Index, error) {
	return table.NewLAESAParallel(ds, pivots, workers)
}

// EPTOptions configures the extreme pivot tables.
type EPTOptions struct {
	// L is the number of pivots per object.
	L int
	// M is the EPT group size (0 = estimate from Equation (1)).
	M int
	// Radius is a typical query radius used by the group-size estimate.
	Radius float64
	// Seed drives sampling.
	Seed int64
	// Workers parallelizes the per-object pivot assignment during
	// construction: 0 or 1 builds sequentially, negative uses GOMAXPROCS,
	// otherwise that many goroutines. The built table is identical either
	// way.
	Workers int
}

// NewEPT builds the original Extreme Pivot Table [24] (§3.2).
func NewEPT(ds *Dataset, opts EPTOptions) (Index, error) {
	return ept.New(ds, ept.Original, ept.Options{
		L: opts.L, M: opts.M, Radius: opts.Radius,
		Sel: pivot.Options{Seed: opts.Seed}, Workers: opts.Workers,
	})
}

// NewEPTStar builds EPT* — EPT with the paper's PSA pivot selection
// (Algorithm 1), trading construction cost for query compdists (§3.2).
func NewEPTStar(ds *Dataset, opts EPTOptions) (Index, error) {
	return ept.New(ds, ept.Star, ept.Options{
		L: opts.L, Sel: pivot.Options{Seed: opts.Seed}, Workers: opts.Workers,
	})
}

// NewDiskEPTStar builds the disk-based EPT* — the extension the paper's
// conclusion (§7) names as a promising direction: EPT*'s per-object PSA
// pivots with the table on sequential disk pages and objects in a RAF,
// removing the in-memory table's dataset-size limit.
func NewDiskEPTStar(ds *Dataset, opts EPTOptions, disk DiskOptions) (*DiskIndex, error) {
	p := disk.pager()
	idx, err := ept.NewDisk(ds, p, ept.Options{
		L: opts.L, Sel: pivot.Options{Seed: opts.Seed}, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// NewCPT builds the Clustered Pivot Table (§3.3): in-memory distance
// table plus a disk M-tree clustering the objects, both built
// sequentially (the paper's methodology).
func NewCPT(ds *Dataset, pivots []int, opts DiskOptions) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := cpt.New(ds, p, pivots, cpt.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// NewCPTParallel builds the same CPT with the distance-table precompute
// fanned out across workers goroutines (<= 0 uses GOMAXPROCS) and the
// M-tree constructed by the partitioned bulk load instead of one-by-one
// insertion. Query answers are identical to NewCPT's; only the object
// clustering on disk (and the build time) differs.
func NewCPTParallel(ds *Dataset, pivots []int, opts DiskOptions, workers int) (*DiskIndex, error) {
	if workers <= 0 {
		workers = -1 // cpt: negative means GOMAXPROCS
	}
	p := opts.pager()
	idx, err := cpt.New(ds, p, pivots, cpt.Options{Seed: 1, Workers: workers})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// TreeOptions configures the in-memory pivot trees.
type TreeOptions struct {
	// LeafCapacity is the bucket size (16 when zero).
	LeafCapacity int
	// MaxChildren caps BKT/FQT fanout (64 when zero).
	MaxChildren int
	// Arity is the MVPT fanout m (5 when zero, per §4.3).
	Arity int
	// MaxDistance is the distance-domain bound d+ (required by BKT/FQT).
	MaxDistance float64
	// Seed drives BKT's random pivot choice.
	Seed int64
	// Workers parallelizes construction of all three trees node-level
	// (per-node pivot distances fan out and sibling subtrees build
	// concurrently, total concurrency bounded by a shared token pool):
	// 0 or 1 builds sequentially, negative uses GOMAXPROCS. The tree is
	// identical either way.
	Workers int
}

// NewBKT builds the Burkhard-Keller tree (§4.1); the metric must be
// discrete.
func NewBKT(ds *Dataset, opts TreeOptions) (Index, error) {
	return bkt.New(ds, bkt.Options{
		LeafCapacity: opts.LeafCapacity, MaxChildren: opts.MaxChildren,
		Seed: opts.Seed, MaxDistance: opts.MaxDistance, Workers: opts.Workers,
	})
}

// NewFQT builds the Fixed Queries Tree (§4.2); the metric must be
// discrete.
func NewFQT(ds *Dataset, pivots []int, opts TreeOptions) (Index, error) {
	return fqt.New(ds, pivots, fqt.Options{
		LeafCapacity: opts.LeafCapacity, MaxChildren: opts.MaxChildren,
		MaxDistance: opts.MaxDistance, Workers: opts.Workers,
	})
}

// NewFQA builds the Fixed Queries Array [11], the compact form of FQT.
func NewFQA(ds *Dataset, pivots []int) (Index, error) {
	return fqt.NewFQA(ds, pivots)
}

// NewMVPT builds the multi-vantage-point tree (§4.3) with the configured
// arity (5 by default; 2 yields the classic VPT).
func NewMVPT(ds *Dataset, pivots []int, opts TreeOptions) (Index, error) {
	return mvpt.New(ds, pivots, mvpt.Options{
		Arity: opts.Arity, LeafCapacity: opts.LeafCapacity, Workers: opts.Workers,
	})
}

// NewPMTree builds the PM-tree (§5.1): an M-tree with per-entry pivot
// rings, loaded by one-by-one insertion (the paper's methodology).
// Objects live inside the tree pages, so high-dimensional data needs
// LargePageSize.
func NewPMTree(ds *Dataset, pivots []int, opts DiskOptions) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := pmtree.New(ds, p, pivots, pmtree.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// NewPMTreeParallel builds the same PM-tree with the partitioned bulk
// load: objects are partitioned around deterministic samples, partition
// subtrees build in parallel workers (<= 0 uses GOMAXPROCS), and a
// sequential merge writes the pages, so the resulting volume is
// byte-identical for every worker count. Answers match NewPMTree's;
// only page clustering and build time differ.
func NewPMTreeParallel(ds *Dataset, pivots []int, opts DiskOptions, workers int) (*DiskIndex, error) {
	if workers <= 0 {
		workers = -1 // pmtree: negative means GOMAXPROCS
	}
	p := opts.pager()
	idx, err := pmtree.New(ds, p, pivots, pmtree.Options{Seed: 1, Workers: workers})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// OmniOptions configures the Omni-family.
type OmniOptions struct {
	DiskOptions
	// MaxDistance is d+, used to quantize the R-tree bulk-load ordering.
	MaxDistance float64
	// Workers parallelizes the pivot-table precompute during
	// construction: 0 or 1 builds sequentially, negative uses GOMAXPROCS,
	// otherwise that many goroutines. The built index is identical either
	// way.
	Workers int
}

// NewOmniRTree builds the OmniR-tree (§5.2), the family's best performer.
func NewOmniRTree(ds *Dataset, pivots []int, opts OmniOptions) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := omni.NewRTree(ds, p, pivots, omni.Options{MaxDistance: opts.MaxDistance, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// NewOmniSeqFile builds the Omni-sequential-file (§5.2).
func NewOmniSeqFile(ds *Dataset, pivots []int, opts DiskOptions) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := omni.NewSeqFile(ds, p, pivots, 0)
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// NewOmniBPlus builds the OmniB+-tree (§5.2): one B+-tree per pivot.
func NewOmniBPlus(ds *Dataset, pivots []int, opts DiskOptions) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := omni.NewBPlus(ds, p, pivots, 0)
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// MIndexOptions configures the M-index.
type MIndexOptions struct {
	DiskOptions
	// MaxDistance is d+, the key stride. Required.
	MaxDistance float64
	// MaxNum is the cluster split threshold (1600 when zero, per §5.3).
	MaxNum int
}

// NewMIndex builds the plain M-index (§5.3).
func NewMIndex(ds *Dataset, pivots []int, opts MIndexOptions) (*DiskIndex, error) {
	return newMIndex(ds, pivots, opts, false)
}

// NewMIndexStar builds the paper's improved M-index* — cluster MBBs,
// best-first MkNNQ, Lemma 4 validation (§5.3).
func NewMIndexStar(ds *Dataset, pivots []int, opts MIndexOptions) (*DiskIndex, error) {
	return newMIndex(ds, pivots, opts, true)
}

func newMIndex(ds *Dataset, pivots []int, opts MIndexOptions, star bool) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := mindex.New(ds, p, pivots, mindex.Options{
		Star: star, MaxNum: opts.MaxNum, MaxDistance: opts.MaxDistance,
	})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}

// SPBOptions configures the SPB-tree.
type SPBOptions struct {
	DiskOptions
	// MaxDistance is d+, the discretization range. Required.
	MaxDistance float64
	// Bits per dimension (0 = as many as fit in a 64-bit key).
	Bits int
}

// NewSPBTree builds the SPB-tree (§5.4): Hilbert-mapped distance vectors
// in an augmented B+-tree plus an SFC-ordered RAF.
func NewSPBTree(ds *Dataset, pivots []int, opts SPBOptions) (*DiskIndex, error) {
	p := opts.pager()
	idx, err := spb.New(ds, p, pivots, spb.Options{
		MaxDistance: opts.MaxDistance, Bits: opts.Bits,
	})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pager: p}, nil
}
