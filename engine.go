package metricindex

import (
	"metricindex/internal/exec"
)

// Engine is the concurrent batch query engine: it answers MRQ and MkNNQ
// workloads over any Index from a pool of worker goroutines, returning
// results positionally aligned with the input queries (identical to a
// sequential loop, order-normalized) and per-batch aggregate cost stats.
//
// Queries are read-only on every index in the library, so a single index
// can serve a batch concurrently. A raw index must not interleave
// Insert/Delete with a running batch; wrap it in NewLive to run batches
// and updates concurrently under the epoch contract.
type Engine = exec.Engine

// EngineOptions configures an Engine.
type EngineOptions = exec.Options

// BatchStats aggregates compdists, page accesses, wall time and
// per-query latency percentiles (p50/p95/p99) over one batch.
type BatchStats = exec.BatchStats

// RangeResult is the answer of Engine.BatchRangeSearch.
type RangeResult = exec.RangeResult

// KNNResult is the answer of Engine.BatchKNNSearch.
type KNNResult = exec.KNNResult

// NewEngine creates a batch query engine over the instrumented space the
// indexes share (pass the Space the Dataset was built with, so per-batch
// CompDists are collected; nil disables that stat). Workers <= 0 defaults
// to GOMAXPROCS.
func NewEngine(space *Space, opts EngineOptions) *Engine {
	return exec.New(space, opts)
}
