package metricindex

import (
	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/epoch"
)

// Live is an index whose Insert/Delete are epoch-synchronized with its
// searches, lifting the library's historical "do not interleave updates
// with a running batch" restriction for the structure it wraps, and
// whose whole structure can be hot-swapped (rebuilt in the background,
// cut over atomically) with Swap. Live implements Index, so it composes
// with the batch engine and anything else that consumes one.
//
// Live owns its dataset: mutate only through Add and Remove so dataset
// and index always change inside the same write section. Every committed
// write advances Epoch, a monotone version counter searches can be
// correlated against.
type Live = epoch.Live

// IndexBuilder constructs an index over a dataset — the rebuild callback
// of Live.Swap and ServerOptions.Builder. The shard builders in this
// package have the same shape, so one function can serve both roles.
type IndexBuilder = epoch.Builder

// ErrSwapInProgress is returned by Live.Swap while a rebuild is already
// running (one swap at a time).
var ErrSwapInProgress = epoch.ErrSwapInProgress

// CacheOptions configures the epoch-keyed answer cache of a Live index:
// a byte-budgeted, sharded LRU that memoizes whole query answers with
// singleflight collapse of concurrent identical misses. Entries are
// keyed by (query, kind, radius|k, epoch), so every committed
// Add/Remove/Insert/Delete/Swap invalidates the working set for free —
// a search that starts after a write commits can never be served a
// pre-write answer. The zero value uses the defaults (32 MB, 16
// shards).
type CacheOptions = cache.Options

// CacheStats is a snapshot of a Live index's answer-cache counters
// (Live.CacheStats); its HitRate method is the fraction of lookups that
// avoided computing.
type CacheStats = cache.Stats

// NewLive wraps an index and the dataset it was built over into an
// update-synchronized, hot-swappable front:
//
//	idx, _ := metricindex.NewLAESA(ds, pivots)
//	live := metricindex.NewLive(ds, idx)
//	go func() { _, _ = live.KNNSearch(q, 10) }()       // searches...
//	_, _ = live.Add(metricindex.Vector{1, 2})          // ...interleave with updates
//	_ = live.Swap(func(ds *metricindex.Dataset) (metricindex.Index, error) {
//		pv, err := metricindex.SelectPivots(ds, 5, 1)  // graceful rebuild:
//		if err != nil {                                // queries keep flowing,
//			return nil, err                            // zero wrong answers
//		}
//		return metricindex.NewLAESA(ds, pv)
//	})
//
// Passing a CacheOptions attaches the epoch-keyed answer cache, so hot
// queries are served memoized — byte-identical to a fresh search, zero
// compdists, zero page accesses — until the next committed write bumps
// the epoch:
//
//	live := metricindex.NewLive(ds, idx, metricindex.CacheOptions{MaxBytes: 64 << 20})
//	hits, _ := live.CacheStats()
func NewLive(ds *Dataset, idx Index, cacheOpts ...CacheOptions) *Live {
	l := epoch.NewLive(ds, idx)
	if len(cacheOpts) > 0 {
		l.SetCache(cache.New(cacheOpts[0]))
	}
	return l
}

// ensure the alias stays an Index.
var _ core.Index = (*Live)(nil)
