package metricindex

import (
	"metricindex/internal/shard"
)

// ShardBuilder constructs the sub-index for one shard of a sharded index.
// The shard dataset shares the parent's Space and object identifiers —
// only the shard's objects are live in it — so any index constructor in
// the library serves: select pivots on the shard dataset, then build over
// it, e.g.
//
//	builder := func(sub *metricindex.Dataset) (metricindex.Index, error) {
//		pivots, err := metricindex.SelectPivots(sub, 5, 1)
//		if err != nil {
//			return nil, err
//		}
//		return metricindex.NewLAESA(sub, pivots)
//	}
type ShardBuilder = shard.Builder

// ShardPartitioner routes objects to shards; see RoundRobinPartitioner and
// HashPartitioner for the built-in strategies.
type ShardPartitioner = shard.Partitioner

// RoundRobinPartitioner cycles through shards in routing order, keeping
// shard sizes within one object of each other (the default).
func RoundRobinPartitioner() ShardPartitioner { return shard.RoundRobin{} }

// HashPartitioner routes by a mixed hash of the object identifier, so an
// object's shard does not depend on routing order.
func HashPartitioner() ShardPartitioner { return shard.Hash{} }

// ShardOptions configures NewSharded.
type ShardOptions struct {
	// Shards is the number of partitions; <= 0 uses GOMAXPROCS, and the
	// count is capped at the number of live objects.
	Shards int
	// Workers bounds the goroutines used per query (concurrent shard
	// probes) and for the parallel shard builds; <= 0 uses GOMAXPROCS.
	Workers int
	// Partitioner routes objects to shards; nil uses round-robin.
	Partitioner ShardPartitioner
}

// Sharded is the scatter-gather index: a partition of the dataset across N
// sub-indexes behind one Index. Queries fan out to every shard
// concurrently and merge into exactly the answer the same index would
// return unsharded; Insert/Delete route through the partitioner; the cost
// counters sum across shards.
type Sharded = shard.Sharded

// NewSharded partitions ds across opts.Shards sub-indexes, each built by
// builder (in parallel), and returns the scatter-gather front. Because the
// result is itself an Index, it composes with the batch engine: one
// NewEngine batch over a Sharded index runs queries × shards concurrently.
func NewSharded(builder ShardBuilder, ds *Dataset, opts ShardOptions) (*Sharded, error) {
	return shard.New(ds, builder, shard.Options{
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		Partitioner: opts.Partitioner,
	})
}
