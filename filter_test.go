package metricindex_test

import (
	"testing"

	"metricindex"
)

// TestFacadeFilteredSearch drives the public filtered-search surface
// end to end: attach bags, compile a predicate, search through the
// live front, and check the answer against a hand filter of the
// unfiltered result.
func TestFacadeFilteredSearch(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 500, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	for i, id := range ds.LiveIDs() {
		ds.SetAttrs(id, metricindex.Attrs{
			"parity": metricindex.StringValue([]string{"even", "odd"}[i%2]),
			"rank":   metricindex.IntValue(int64(i)),
		})
	}
	pivots, err := metricindex.SelectPivots(ds, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := metricindex.NewLAESA(ds, pivots)
	if err != nil {
		t.Fatal(err)
	}
	live := metricindex.NewLive(ds, idx)

	pred, err := metricindex.ParseFilter(`parity = "even" AND rank < 400`)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Queries[0]
	r := gen.MaxDistance / 8

	ids, _, st, err := live.RangeSearchFiltered(q, r, pred)
	if err != nil {
		t.Fatal(err)
	}
	if st != metricindex.PlanPre && st != metricindex.PlanProbe && st != metricindex.PlanPost {
		t.Fatalf("unexpected strategy %v", st)
	}
	plain, err := live.RangeSearch(q, r)
	if err != nil {
		t.Fatal(err)
	}
	want := plain[:0:0]
	for _, id := range plain {
		if pred.Eval(live.Attrs(id)) {
			want = append(want, id)
		}
	}
	if len(ids) != len(want) {
		t.Fatalf("filtered range returned %d ids, want %d", len(ids), len(want))
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("filtered range id[%d] = %d, want %d", i, ids[i], want[i])
		}
	}

	nns, _, _, err := live.KNNSearchFiltered(q, 5, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(nns) != 5 {
		t.Fatalf("filtered kNN returned %d neighbors, want 5", len(nns))
	}
	for _, nn := range nns {
		if !pred.Eval(live.Attrs(nn.ID)) {
			t.Fatalf("filtered kNN neighbor %d fails the predicate", nn.ID)
		}
	}
}
