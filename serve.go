package metricindex

import (
	"metricindex/internal/server"
)

// Server is the long-lived query service: it exposes a Live index over
// HTTP/JSON with endpoints for range search (POST /v1/range), kNN
// (POST /v1/knn), batched workloads through the concurrent engine
// (POST /v1/batch), updates (POST /v1/insert, /v1/delete), graceful
// index swap (POST /v1/swap), statistics (GET /v1/stats) and health
// (GET /healthz). Admission control bounds the in-flight queries and the
// wait queue, shedding excess load with 429; per-endpoint and per-client
// stats report qps, p50/p95/p99 latency, compdists and page accesses.
// Every answer equals the direct call on the wrapped index.
type Server = server.Server

// ServerOptions configures NewServer; the zero value serves with
// 4×GOMAXPROCS in-flight slots, a 4× deeper queue, no swap builder, and
// no answer cache. Setting Cache (a *CacheOptions) installs the
// epoch-keyed answer cache on the live index, with hit/miss/eviction
// counters reported in GET /v1/stats.
type ServerOptions = server.Options

// ServerStats is the GET /v1/stats response shape.
type ServerStats = server.StatsResponse

// NewServer builds the serving layer over a live index:
//
//	live := metricindex.NewLive(ds, idx)
//	srv, _ := metricindex.NewServer(live, metricindex.ServerOptions{Builder: rebuild})
//	_ = srv.ListenAndServe(":8080")
//
// The cmd/mserve binary wraps exactly this around any of the paper's
// index structures (optionally sharded).
func NewServer(live *Live, opts ServerOptions) (*Server, error) {
	return server.New(live, opts)
}
