package metricindex

import (
	"metricindex/internal/core"
	"metricindex/internal/plan"
)

// Filtered (hybrid) search: objects carry typed attribute bags, queries
// carry a compiled predicate, and a selectivity-aware planner picks how
// to combine the filter with the metric probe — before it (linear scan
// of the matches), during it (predicate pushed into candidate
// verification), or after it (inflated-k re-probe). Every strategy
// returns exactly the filtered subset of the metric answer; only the
// cost differs. See docs/HYBRID.md for the grammar and the planner.

// Attrs is an object's attribute bag: field name → typed value. Attach
// bags with Dataset.SetAttrs (or Live.AddAttrs / Live.SetAttrsAt on a
// live front); they ride through snapshots, the WAL, and dataset files.
type Attrs = core.Attrs

// AttrValue is one typed attribute value: int, float, string, or a tag
// set.
type AttrValue = core.AttrValue

// IntValue makes an integer attribute value.
func IntValue(v int64) AttrValue { return core.IntValue(v) }

// FloatValue makes a float attribute value.
func FloatValue(v float64) AttrValue { return core.FloatValue(v) }

// StringValue makes a string attribute value.
func StringValue(v string) AttrValue { return core.StringValue(v) }

// TagsValue makes a tag-set attribute value ("=" means contains).
func TagsValue(tags ...string) AttrValue { return core.TagsValue(tags...) }

// Predicate is a compiled filter expression. Compile once with
// ParseFilter, then pass it to Live.RangeSearchFiltered /
// Live.KNNSearchFiltered (evaluation is zero-alloc, so one compiled
// predicate serves any number of queries and candidates).
type Predicate = plan.Predicate

// ParseFilter compiles a filter expression such as
//
//	category = "tools" AND price < 100 OR tags = "sale"
//
// Comparisons: = != < <= > >= and IN (...); AND binds tighter than OR;
// parentheses group. A predicate over a missing field or a mismatched
// type is false, never an error.
func ParseFilter(src string) (*Predicate, error) { return plan.Parse(src) }

// PlanStrategy reports how a filtered query was executed. The zero
// value means no plan ran (the answer came from the cache).
type PlanStrategy = plan.Strategy

// The three filtered-search execution strategies the planner chooses
// among, by estimated selectivity and index capability.
const (
	PlanPre   PlanStrategy = plan.StrategyPre
	PlanProbe PlanStrategy = plan.StrategyProbe
	PlanPost  PlanStrategy = plan.StrategyPost
)
