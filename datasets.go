package metricindex

import "metricindex/internal/dataset"

// DatasetKind names one of the four benchmark datasets of the paper's
// Table 2.
type DatasetKind = dataset.Kind

// The benchmark datasets (§6.1): LA (2-D locations, L2), Words (strings,
// edit distance), Color (282-dim features, L1), and Synthetic (20-dim
// integer vectors, L∞).
const (
	DatasetLA        = dataset.LA
	DatasetWords     = dataset.Words
	DatasetColor     = dataset.Color
	DatasetSynthetic = dataset.Synthetic
)

// BenchmarkDataset bundles a generated dataset with its held-out query
// workload and the estimated maximum pairwise distance d+ (needed by the
// M-index and SPB-tree constructors).
type BenchmarkDataset = dataset.Generated

// GenerateDataset builds a synthetic stand-in for one of the paper's
// datasets at the requested cardinality (see DESIGN.md for how each
// generator preserves the original's indexing-relevant properties).
func GenerateDataset(kind DatasetKind, n, queries int, seed int64) (*BenchmarkDataset, error) {
	return dataset.Generate(kind, dataset.Config{N: n, Queries: queries, Seed: seed})
}

// CalibrateRadius returns the MRQ radius whose expected selectivity is
// the given fraction of the dataset — the paper's r = 4%..64% axis.
func CalibrateRadius(g *BenchmarkDataset, selectivity float64) float64 {
	return dataset.CalibrateRadius(g, selectivity)
}
