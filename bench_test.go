package metricindex_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6), each delegating to the experiment harness at a reduced scale so
// `go test -bench=.` regenerates the full study in minutes. Run
// cmd/experiments for paper-scale sweeps and readable reports.

import (
	"context"
	"io"
	"testing"

	"metricindex"
	"metricindex/internal/bench"
	"metricindex/internal/dataset"
)

// benchCfg keeps `go test -bench=.` runs laptop-quick while exercising
// every code path the paper measures.
func benchCfg(datasets ...dataset.Kind) bench.Config {
	if len(datasets) == 0 {
		datasets = []dataset.Kind{dataset.LA, dataset.Words}
	}
	return bench.Config{N: 2000, Queries: 4, Pivots: 5, Seed: 42, Datasets: datasets}
}

// BenchmarkTable4Construction regenerates Table 4: per-index construction
// PA, compdists, time, and storage.
func BenchmarkTable4Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table4(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Update regenerates Table 6: delete+reinsert costs.
func BenchmarkTable6Update(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table6(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14EPTvsEPTStar regenerates Fig 14: EPT vs EPT* MkNNQ costs
// across k.
func BenchmarkFig14EPTvsEPTStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig14(io.Discard, benchCfg(dataset.LA)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15MIndex regenerates Fig 15: M-index vs M-index* MkNNQ
// costs across k.
func BenchmarkFig15MIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig15(io.Discard, benchCfg(dataset.LA)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16MRQ regenerates Fig 16: the MRQ radius sweep over the
// nine-index lineup.
func BenchmarkFig16MRQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig16(io.Discard, benchCfg(dataset.Words)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17MkNN regenerates Fig 17: the MkNNQ k sweep over the
// nine-index lineup.
func BenchmarkFig17MkNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig17(io.Discard, benchCfg(dataset.Words)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18Pivots regenerates Fig 18: the |P| sweep on LA.
func BenchmarkFig18Pivots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig18(io.Discard, benchCfg(dataset.LA)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPivotSelection compares HFI / HF / random pivots —
// the methodological point of §6.1.
func BenchmarkAblationPivotSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.AblationPivotSelection(io.Discard, benchCfg(dataset.LA)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMVPTArity sweeps the MVPT fanout (§4.3's m=5 choice).
func BenchmarkAblationMVPTArity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.AblationMVPTArity(io.Discard, benchCfg(dataset.LA)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSFC sweeps the SPB-tree's discretization budget.
func BenchmarkAblationSFC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.AblationSFC(io.Discard, benchCfg(dataset.LA)); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-index micro-benchmarks: MkNNQ(k=10) on the LA workload, isolating
// per-query latency per structure.
func BenchmarkKNNPerIndex(b *testing.B) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 5000, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	disk := metricindex.DiskOptions{CacheBytes: metricindex.DefaultCacheBytes}
	builders := []struct {
		name string
		mk   func() (metricindex.Index, error)
	}{
		{"LAESA", func() (metricindex.Index, error) { return metricindex.NewLAESA(ds, pivots) }},
		{"EPTStar", func() (metricindex.Index, error) {
			return metricindex.NewEPTStar(ds, metricindex.EPTOptions{L: 5, Seed: 3})
		}},
		{"MVPT", func() (metricindex.Index, error) {
			return metricindex.NewMVPT(ds, pivots, metricindex.TreeOptions{})
		}},
		{"PMTree", func() (metricindex.Index, error) {
			idx, err := metricindex.NewPMTree(ds, pivots, disk)
			if err != nil {
				return nil, err
			}
			return idx, nil
		}},
		{"OmniRTree", func() (metricindex.Index, error) {
			idx, err := metricindex.NewOmniRTree(ds, pivots, metricindex.OmniOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance})
			if err != nil {
				return nil, err
			}
			return idx, nil
		}},
		{"MIndexStar", func() (metricindex.Index, error) {
			idx, err := metricindex.NewMIndexStar(ds, pivots, metricindex.MIndexOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance})
			if err != nil {
				return nil, err
			}
			return idx, nil
		}},
		{"SPBTree", func() (metricindex.Index, error) {
			idx, err := metricindex.NewSPBTree(ds, pivots, metricindex.SPBOptions{DiskOptions: disk, MaxDistance: gen.MaxDistance})
			if err != nil {
				return nil, err
			}
			return idx, nil
		}},
	}
	for _, bb := range builders {
		idx, err := bb.mk()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := gen.Queries[i%len(gen.Queries)]
				if _, err := idx.KNNSearch(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchVsSequential compares MkNNQ throughput of the sequential
// per-query loop against the concurrent batch engine over the same index
// and workload — the concurrent-serving scenario §6.2 motivates. Run with
// -benchtime to taste; the Batch variant should scale with cores.
func BenchmarkBatchVsSequential(b *testing.B) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 20000, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := metricindex.NewLAESA(ds, pivots)
	if err != nil {
		b.Fatal(err)
	}
	const k = 10
	b.Run("SequentialKNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range gen.Queries {
				if _, err := idx.KNNSearch(q, k); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(gen.Queries))/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("BatchKNN", func(b *testing.B) {
		eng := metricindex.NewEngine(ds.Space(), metricindex.EngineOptions{})
		for i := 0; i < b.N; i++ {
			if _, err := eng.BatchKNNSearch(context.Background(), idx, gen.Queries, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(gen.Queries))/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("SequentialMRQ", func(b *testing.B) {
		r := gen.MaxDistance / 10
		for i := 0; i < b.N; i++ {
			for _, q := range gen.Queries {
				if _, err := idx.RangeSearch(q, r); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(gen.Queries))/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("BatchMRQ", func(b *testing.B) {
		r := gen.MaxDistance / 10
		eng := metricindex.NewEngine(ds.Space(), metricindex.EngineOptions{})
		for i := 0; i < b.N; i++ {
			if _, err := eng.BatchRangeSearch(context.Background(), idx, gen.Queries, r); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*len(gen.Queries))/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkParallelBuild compares sequential vs parallel construction of
// the precompute-heavy indexes (§6.2's "objects are independent" remark).
func BenchmarkParallelBuild(b *testing.B) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 20000, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("LAESASequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metricindex.NewLAESA(ds, pivots); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LAESAParallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metricindex.NewLAESAParallel(ds, pivots, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EPTStarSequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metricindex.NewEPTStar(ds, metricindex.EPTOptions{L: 5, Seed: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EPTStarParallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metricindex.NewEPTStar(ds, metricindex.EPTOptions{L: 5, Seed: 3, Workers: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheHitMiss measures the epoch-keyed answer cache around the
// same MkNNQ workload: Miss re-answers the workload against a fresh
// cache every iteration (the miss-and-fill path layered on the search),
// Hit primes once and then serves the workload memoized — zero
// compdists per query. The spread between the two is what a hot query
// costs with and without the cache.
func BenchmarkCacheHitMiss(b *testing.B) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 20000, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := metricindex.NewLAESA(ds, pivots)
	if err != nil {
		b.Fatal(err)
	}
	const k = 10
	b.Run("Miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			live := metricindex.NewLive(ds, idx, metricindex.CacheOptions{})
			for _, q := range gen.Queries {
				if _, err := live.KNNSearch(q, k); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(gen.Queries))/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("Hit", func(b *testing.B) {
		live := metricindex.NewLive(ds, idx, metricindex.CacheOptions{})
		for _, q := range gen.Queries {
			if _, err := live.KNNSearch(q, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range gen.Queries {
				if _, err := live.KNNSearch(q, k); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(gen.Queries))/b.Elapsed().Seconds(), "queries/s")
		st, ok := live.CacheStats()
		if !ok || st.Hits == 0 {
			b.Fatal("hit benchmark never hit the cache")
		}
	})
}
