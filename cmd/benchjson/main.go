// Command benchjson runs the repository's throughput benchmarks as a
// plain program and emits machine-readable JSON — the measurement half
// of the CI bench gate. It covers the batch-vs-sequential engine
// comparison, the answer cache's cold/hot paths, and sequential-vs-
// parallel index construction (BKT node-level build, PM-tree bulk
// load), reporting queries (or objects indexed) per second — best of
// -reps repetitions, to shed scheduler noise — plus the cache hit rate.
//
// Two modes:
//
//	benchjson -out BENCH_PR.json                  # measure and write
//	benchjson -baseline BENCH_BASELINE.json \
//	          -current BENCH_PR.json \
//	          -max-regress 0.25                   # gate: fail on >25% q/s regression
//
// The gate compares every benchmark present in both files and exits
// nonzero when any current q/s falls below (1 - max-regress) × baseline.
// Absolute q/s varies across machines; the committed baseline should be
// refreshed (make bench-baseline) whenever the CI runner class changes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"metricindex"
	"metricindex/internal/dataset"
	"metricindex/internal/obs"
	"metricindex/internal/store"
)

// Result is one benchmark's measurement.
type Result struct {
	QPS     float64 `json:"qps"`
	Queries int64   `json:"queries"`
	// HitRate is the answer-cache hit rate over the measurement (cache
	// benchmarks only).
	HitRate float64 `json:"hit_rate,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	N          int               `json:"n"`
	Queries    int               `json:"queries"`
	K          int               `json:"k"`
	Workers    int               `json:"workers"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// Obs is a flat snapshot of the run's observability registry —
	// cost counters (compdists, page traffic, cache hits) and Go
	// runtime numbers — alongside the q/s figures. Informational: the
	// gate compares only Benchmarks.
	Obs map[string]float64 `json:"obs,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "", "write measurements to this JSON file (measure mode)")
		baseline   = flag.String("baseline", "", "baseline JSON to gate against (gate mode, with -current)")
		current    = flag.String("current", "", "current JSON to gate (gate mode)")
		maxRegress = flag.Float64("max-regress", 0.25, "gate: maximum tolerated q/s regression fraction")
		n          = flag.Int("n", 10000, "dataset cardinality")
		queries    = flag.Int("queries", 64, "workload size")
		k          = flag.Int("k", 10, "MkNNQ k")
		reps       = flag.Int("reps", 3, "repetitions per benchmark; the best is reported")
		minDur     = flag.Duration("min-duration", 200*time.Millisecond, "minimum measured time per repetition")
	)
	flag.Parse()

	if *baseline != "" || *current != "" {
		if *baseline == "" || *current == "" {
			fmt.Fprintln(os.Stderr, "benchjson: gate mode needs both -baseline and -current")
			os.Exit(2)
		}
		if err := gate(*baseline, *current, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -out (measure mode) or -baseline/-current (gate mode)")
		os.Exit(2)
	}
	rep, err := measure(*n, *queries, *k, *reps, *minDur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	printReport(rep)
}

// measure builds the benchmark fixture once and times every benchmark.
func measure(n, queries, k, reps int, minDur time.Duration) (*Report, error) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, n, queries, 7)
	if err != nil {
		return nil, err
	}
	ds := gen.Dataset
	pivots, err := metricindex.SelectPivots(ds, 5, 3)
	if err != nil {
		return nil, err
	}
	idx, err := metricindex.NewLAESA(ds, pivots)
	if err != nil {
		return nil, err
	}
	eng := metricindex.NewEngine(ds.Space(), metricindex.EngineOptions{})
	radius := gen.MaxDistance / 10
	ctx := context.Background()

	rep := &Report{
		N: n, Queries: queries, K: k,
		Workers: eng.Workers(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Result{},
	}

	// bench times one workload-shaped function: fn answers the whole
	// workload once and returns the number of queries answered; it is
	// looped until minDur elapses, repeated `reps` times, best q/s wins.
	bench := func(name string, setup func() error, fn func() (int64, error)) error {
		var best Result
		for rep := 0; rep < reps; rep++ {
			if setup != nil {
				if err := setup(); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
			}
			var answered int64
			start := time.Now()
			for time.Since(start) < minDur {
				nq, err := fn()
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				answered += nq
			}
			if qps := float64(answered) / time.Since(start).Seconds(); qps > best.QPS {
				best.QPS = qps
				best.Queries = answered
			}
		}
		rep.Benchmarks[name] = best
		return nil
	}

	if err := bench("seq_knn", nil, func() (int64, error) {
		for _, q := range gen.Queries {
			if _, err := idx.KNNSearch(q, k); err != nil {
				return 0, err
			}
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	if err := bench("batch_knn", nil, func() (int64, error) {
		if _, err := eng.BatchKNNSearch(ctx, idx, gen.Queries, k); err != nil {
			return 0, err
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	if err := bench("seq_mrq", nil, func() (int64, error) {
		for _, q := range gen.Queries {
			if _, err := idx.RangeSearch(q, radius); err != nil {
				return 0, err
			}
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	if err := bench("batch_mrq", nil, func() (int64, error) {
		if _, err := eng.BatchRangeSearch(ctx, idx, gen.Queries, radius); err != nil {
			return 0, err
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}

	// Kernel benchmarks: one "query" is a full distance sweep of the
	// dataset. Three shapes of the same L2 computation — the pairwise
	// scalar loop every index started from, the row-slice batch kernel
	// (DistanceMany over []Object), and the flat row-major kernel
	// (DistanceFlat over one contiguous block). Flat-vs-rows is the gap
	// the struct-of-arrays pivot-table layout banks on.
	flat, dim, ok := ds.FlatVectors()
	if !ok {
		return nil, fmt.Errorf("kernel benchmarks: LA dataset has no flat-vector form")
	}
	bm, ok := ds.Space().Metric().(metricindex.BatchMetric)
	if !ok {
		return nil, fmt.Errorf("kernel benchmarks: metric %T lacks batch kernels", ds.Space().Metric())
	}
	objs := ds.Objects()
	kout := make([]float64, ds.Len())
	scalar := ds.Space().Metric()
	if err := bench("kernel_l2_scalar", nil, func() (int64, error) {
		for _, q := range gen.Queries {
			for i, o := range objs {
				if o != nil {
					kout[i] = scalar.Distance(q, o)
				}
			}
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	if err := bench("kernel_l2_rows", nil, func() (int64, error) {
		for _, q := range gen.Queries {
			bm.DistanceMany(q, objs, kout)
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	if err := bench("kernel_l2_flat", nil, func() (int64, error) {
		for _, q := range gen.Queries {
			bm.DistanceFlat(q.(metricindex.Vector), flat, dim, kout)
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}

	// Cache benchmarks run through an epoch-synchronized front with the
	// answer cache attached. Cold: a fresh cache per workload pass, so
	// every query pays the miss-and-fill path on top of the search. Hot:
	// primed once, then every pass is pure hits.
	if err := bench("cache_cold_knn", nil, func() (int64, error) {
		cold := metricindex.NewLive(ds, idx, metricindex.CacheOptions{})
		for _, q := range gen.Queries {
			if _, err := cold.KNNSearch(q, k); err != nil {
				return 0, err
			}
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	hot := metricindex.NewLive(ds, idx, metricindex.CacheOptions{})
	prime := func() error {
		for _, q := range gen.Queries {
			if _, err := hot.KNNSearch(q, k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := bench("cache_hot_knn", prime, func() (int64, error) {
		for _, q := range gen.Queries {
			if _, err := hot.KNNSearch(q, k); err != nil {
				return 0, err
			}
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}
	if st, ok := hot.CacheStats(); ok {
		r := rep.Benchmarks["cache_hot_knn"]
		r.HitRate = st.HitRate()
		rep.Benchmarks["cache_hot_knn"] = r
	}

	// Filtered kNN through the selectivity-aware planner: datagen-style
	// attribute bags, a mid-selectivity predicate (≈25% of rows), and a
	// cache-less live front so every query runs a real plan — on LAESA
	// that is the probe strategy, the predicate pushed into candidate
	// verification. Measures the full filtered path: estimate, choose,
	// execute.
	if err := dataset.AttachAttrs(gen, 13); err != nil {
		return nil, err
	}
	flive := metricindex.NewLive(ds, idx)
	pred, err := metricindex.ParseFilter(`stock < 25`)
	if err != nil {
		return nil, err
	}
	if err := bench("filtered_knn", nil, func() (int64, error) {
		for _, q := range gen.Queries {
			if _, _, _, err := flive.KNNSearchFiltered(q, k, pred); err != nil {
				return 0, err
			}
		}
		return int64(len(gen.Queries)), nil
	}); err != nil {
		return nil, err
	}

	// Construction benchmarks: objects indexed per second, sequential vs
	// parallel, for one in-memory tree (BKT, node-level parallelism on
	// the discrete Synthetic dataset) and one disk structure (PM-tree,
	// insertion build vs partitioned bulk load on LA). The parallel
	// builds produce identical trees / byte-identical bulk volumes; only
	// the wall clock moves.
	synth, err := metricindex.GenerateDataset(metricindex.DatasetSynthetic, n, 1, 11)
	if err != nil {
		return nil, err
	}
	buildBench := func(name string, fn func() error) error {
		return bench(name, nil, func() (int64, error) {
			if err := fn(); err != nil {
				return 0, err
			}
			return int64(n), nil
		})
	}
	if err := buildBench("build_bkt_seq", func() error {
		_, err := metricindex.NewBKT(synth.Dataset, metricindex.TreeOptions{
			Seed: 3, MaxDistance: synth.MaxDistance,
		})
		return err
	}); err != nil {
		return nil, err
	}
	if err := buildBench("build_bkt_par", func() error {
		_, err := metricindex.NewBKT(synth.Dataset, metricindex.TreeOptions{
			Seed: 3, MaxDistance: synth.MaxDistance, Workers: -1,
		})
		return err
	}); err != nil {
		return nil, err
	}
	if err := buildBench("build_pmtree_seq", func() error {
		_, err := metricindex.NewPMTree(ds, pivots, metricindex.DiskOptions{})
		return err
	}); err != nil {
		return nil, err
	}
	if err := buildBench("build_pmtree_par", func() error {
		_, err := metricindex.NewPMTreeParallel(ds, pivots, metricindex.DiskOptions{}, -1)
		return err
	}); err != nil {
		return nil, err
	}
	rep.Obs = obsSnapshot(ds, hot)
	return rep, nil
}

// obsSnapshot registers pull-based views over the run's cost counters —
// the same sources mserve's /metrics exposes — plus Go runtime numbers,
// and returns one flat scrape of them.
func obsSnapshot(ds *metricindex.Dataset, hot *metricindex.Live) map[string]float64 {
	reg := obs.NewRegistry()
	reg.CounterFunc("mx_compdists_total",
		"Distance computations over the whole run.",
		func() float64 { return float64(ds.Space().CompDists()) })
	reg.CounterFunc("mx_store_page_reads_total",
		"Physical page reads across all pager volumes.",
		func() float64 { r, _, _ := store.GlobalPageStats(); return float64(r) })
	reg.CounterFunc("mx_store_page_writes_total",
		"Page writes across all pager volumes.",
		func() float64 { _, w, _ := store.GlobalPageStats(); return float64(w) })
	reg.CounterFunc("mx_store_cache_hits_total",
		"Pager buffer-cache hits.",
		func() float64 { _, _, h := store.GlobalPageStats(); return float64(h) })
	cacheVal := func(sel func(metricindex.CacheStats) int64) func() float64 {
		return func() float64 {
			st, ok := hot.CacheStats()
			if !ok {
				return 0
			}
			return float64(sel(st))
		}
	}
	reg.CounterFunc("mx_cache_hits_total",
		"Answer-cache hits on the hot-cache fixture.",
		cacheVal(func(st metricindex.CacheStats) int64 { return st.Hits }))
	reg.CounterFunc("mx_cache_misses_total",
		"Answer-cache misses on the hot-cache fixture.",
		cacheVal(func(st metricindex.CacheStats) int64 { return st.Misses }))
	reg.GaugeFunc("mx_runtime_heap_alloc_bytes",
		"Live heap bytes at snapshot time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("mx_runtime_total_alloc_bytes",
		"Cumulative heap bytes allocated over the run.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.TotalAlloc)
		})
	reg.CounterFunc("mx_runtime_gc_total",
		"Completed GC cycles over the run.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	return reg.Snapshot()
}

// gate fails when any shared benchmark regressed beyond the tolerance.
func gate(baselinePath, currentPath string, maxRegress float64) error {
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(currentPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", baselinePath, currentPath)
	}
	if base.GoMaxProcs != cur.GoMaxProcs || base.N != cur.N || base.Queries != cur.Queries {
		fmt.Printf("WARNING: baseline environment differs (gomaxprocs %d vs %d, n %d vs %d, queries %d vs %d)\n",
			base.GoMaxProcs, cur.GoMaxProcs, base.N, cur.N, base.Queries, cur.Queries)
		fmt.Println("WARNING: absolute q/s is not comparable across machine classes — refresh the")
		fmt.Println("WARNING: baseline from this runner (make bench-baseline, or commit a known-good BENCH_PR.json)")
	}
	failed := 0
	fmt.Printf("%-16s %14s %14s %8s\n", "benchmark", "baseline q/s", "current q/s", "ratio")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		ratio := 0.0
		if b.QPS > 0 {
			ratio = c.QPS / b.QPS
		}
		status := ""
		if ratio < 1-maxRegress {
			status = "  REGRESSION"
			failed++
		}
		fmt.Printf("%-16s %14.0f %14.0f %7.2fx%s\n", name, b.QPS, c.QPS, ratio, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed more than %.0f%%", failed, len(names), 100*maxRegress)
	}
	fmt.Printf("all %d benchmarks within %.0f%% of baseline\n", len(names), 100*maxRegress)
	return nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func printReport(rep *Report) {
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := rep.Benchmarks[name]
		extra := ""
		if r.HitRate > 0 {
			extra = fmt.Sprintf("  (%.0f%% hit rate)", 100*r.HitRate)
		}
		fmt.Printf("  %-16s %12.0f q/s%s\n", name, r.QPS, extra)
	}
}
