// Command metriclint runs the repository's custom static-analysis
// suite (internal/analysis) over the module:
//
//	metriclint ./...          # every package under the module root
//	metriclint ./internal/... # every package under a subtree
//	metriclint ./internal/bkt # one package
//
// The four analyzers machine-check invariants the type system cannot:
// epoch lock-section discipline (epochsection), encoder/decoder wire
// symmetry and frozen on-disk constants (wiresym), zero-alloc hot-path
// annotations (noalloc), and error consumption in the durability
// packages (stickyerr). See docs/STATIC_ANALYSIS.md.
//
// Findings print as file:line:col: analyzer: message; the exit status
// is 1 when there are findings, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"metricindex/internal/analysis"
	"metricindex/internal/analysis/epochsection"
	"metricindex/internal/analysis/noalloc"
	"metricindex/internal/analysis/stickyerr"
	"metricindex/internal/analysis/wiresym"
)

var analyzers = []*analysis.Analyzer{
	epochsection.Analyzer,
	noalloc.Analyzer,
	stickyerr.Analyzer,
	wiresym.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: metriclint [pattern ...]\n\npatterns: ./... or package directories; default ./...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		return 2
	}

	dirs, err := expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		return 2
	}

	status := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		pkg, err := loader.LoadDir(dir, filepath.ToSlash(rel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %v\n", rel, err)
			status = 2
			continue
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %s: %v\n", rel, err)
			status = 2
			continue
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
				file = r
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

// expand resolves ./...-style patterns and plain directories into the
// list of package directories to check.
func expand(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			base := filepath.Join(cwd, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			ds, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			add(ds...)
			continue
		}
		abs := filepath.Join(cwd, filepath.FromSlash(p))
		if filepath.IsAbs(p) {
			abs = p
		}
		info, err := os.Stat(abs)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("%s: not a package directory", p)
		}
		add(abs)
	}
	return dirs, nil
}
