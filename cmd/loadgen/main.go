// Command loadgen drives a running mserve instance with a zipf-skewed
// read/write/filtered workload across a concurrency ramp, scrapes
// GET /metrics between steps, and emits a JSON report: latency
// percentiles, shed rate, compdists per query, and the plan-strategy
// mix of filtered queries. With -assert it exits nonzero unless the run
// was error-free, filtered throughput was nonzero, and all three
// planner strategies (pre, probe, post) were exercised — the CI
// load-smoke contract (see docs/HYBRID.md).
//
// The query pool comes from the dataset file the server was booted
// from (-data), so queries are in-distribution and the default filter
// battery matches datagen -attrs bags (category/price/stock/tags).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/dataset"
	"metricindex/internal/server"
)

// The default filter battery targets the bags datagen -attrs writes and
// is tuned to make the planner pick every strategy: rare predicates
// (tail category, price tail) plan as pre, mid-selectivity ranges as
// probe (on probe-capable indexes), broad ranges as post.
const defaultFilters = `stock < 25; stock < 90; category = "kappa" AND stock < 50; price > 200; price < 10 OR tags = "sale"; category IN ("alpha", "beta") AND stock >= 50`

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "mserve base URL")
		data     = flag.String("data", "", "dataset file the server was booted from (required: query pool + radius calibration)")
		ramp     = flag.String("ramp", "4,16,32", "comma-separated concurrency steps")
		step     = flag.Duration("step", 10*time.Second, "duration of each ramp step")
		filtered = flag.Float64("filtered", 0.4, "fraction of searches carrying a filter")
		writes   = flag.Float64("writes", 0.05, "fraction of operations that insert (with attrs)")
		knnFrac  = flag.Float64("knn", 0.5, "fraction of searches that are kNN (rest are range)")
		k        = flag.Int("k", 10, "kNN k")
		radius   = flag.Float64("radius", 0, "range radius (0 = calibrate from sampled pairwise distances)")
		zipfS    = flag.Float64("zipf", 1.2, "zipf skew of query selection (higher = hotter head, more cache hits)")
		seed     = flag.Int64("seed", 1, "workload seed")
		filters  = flag.String("filters", defaultFilters, "semicolon-separated filter battery")
		out      = flag.String("out", "", "report file (default stdout)")
		assert   = flag.Bool("assert", false, "exit nonzero unless: zero errors, nonzero filtered ops, all three strategies ran")
	)
	flag.Parse()
	if *data == "" {
		log.Fatal("-data is required")
	}

	gen, err := dataset.Load(*data)
	if err != nil {
		log.Fatalf("load %s: %v", *data, err)
	}
	pool := queryPool(gen)
	if len(pool) == 0 {
		log.Fatal("dataset has no objects to query")
	}
	r := *radius
	if r <= 0 {
		r = calibrateRadius(gen, *seed)
	}
	battery, err := parseFilters(*filters)
	if err != nil {
		log.Fatal(err)
	}
	steps, err := parseRamp(*ramp)
	if err != nil {
		log.Fatal(err)
	}

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitHealthy(client, base, 15*time.Second); err != nil {
		log.Fatalf("server not healthy: %v", err)
	}

	cfg := workload{
		base: base, client: client,
		pool: pool, radius: r, k: *k,
		filtered: *filtered, writes: *writes, knnFrac: *knnFrac,
		zipfS: *zipfS, battery: battery,
	}
	report := Report{
		Data: *data, Radius: r, K: *k, ZipfS: *zipfS,
		Filters: battery, Strategies: map[string]int64{},
	}
	prev, err := scrapeMetrics(client, base)
	if err != nil {
		log.Fatalf("scrape /metrics: %v", err)
	}
	for i, conc := range steps {
		res := runStep(cfg, conc, *step, *seed+int64(i)*4096)
		cur, err := scrapeMetrics(client, base)
		if err != nil {
			log.Fatalf("scrape /metrics: %v", err)
		}
		res.Metrics = metricsDelta(prev, cur, res.Ops)
		prev = cur
		report.Steps = append(report.Steps, res)
		report.Ops += res.Ops
		report.Errors += res.Errors
		report.Sheds += res.Sheds
		report.FilteredOps += res.FilteredOps
		for s, n := range res.Strategies {
			report.Strategies[s] += n
		}
		log.Printf("step %d: conc=%d ops=%d errors=%d sheds=%d p50=%dus p95=%dus p99=%dus plans=%v",
			i+1, conc, res.Ops, res.Errors, res.Sheds, res.P50Micros, res.P95Micros, res.P99Micros, res.Strategies)
	}

	enc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}

	if *assert {
		var fails []string
		if report.Errors != 0 {
			fails = append(fails, fmt.Sprintf("%d request errors", report.Errors))
		}
		if report.FilteredOps == 0 {
			fails = append(fails, "no filtered operations ran")
		}
		for _, s := range []string{"pre", "probe", "post"} {
			if report.Strategies[s] == 0 {
				fails = append(fails, fmt.Sprintf("strategy %q never chosen", s))
			}
		}
		if len(fails) > 0 {
			log.Fatalf("assertions failed: %s", strings.Join(fails, "; "))
		}
		log.Printf("assertions passed: %d ops, %d filtered, plans=%v", report.Ops, report.FilteredOps, report.Strategies)
	}
}

// Report is the JSON document loadgen emits.
type Report struct {
	Data        string           `json:"data"`
	Radius      float64          `json:"radius"`
	K           int              `json:"k"`
	ZipfS       float64          `json:"zipf_s"`
	Filters     []string         `json:"filters"`
	Steps       []StepResult     `json:"steps"`
	Ops         int64            `json:"ops"`
	Errors      int64            `json:"errors"`
	Sheds       int64            `json:"sheds"`
	FilteredOps int64            `json:"filtered_ops"`
	Strategies  map[string]int64 `json:"strategies"`
}

// StepResult aggregates one ramp step. Latency percentiles cover
// successful requests only; Sheds counts 429 backpressure rejections
// (by design not errors); Strategies counts the per-response plan
// choice, with "cached" meaning the answer cache short-circuited the
// plan entirely.
type StepResult struct {
	Concurrency int              `json:"concurrency"`
	DurationS   float64          `json:"duration_s"`
	Ops         int64            `json:"ops"`
	Errors      int64            `json:"errors"`
	Sheds       int64            `json:"sheds"`
	FilteredOps int64            `json:"filtered_ops"`
	Inserts     int64            `json:"inserts"`
	QPS         float64          `json:"qps"`
	P50Micros   int64            `json:"p50_micros"`
	P95Micros   int64            `json:"p95_micros"`
	P99Micros   int64            `json:"p99_micros"`
	Strategies  map[string]int64 `json:"strategies"`
	Metrics     *MetricsDelta    `json:"metrics,omitempty"`
}

// MetricsDelta is the server-side view of one step, from /metrics
// scraped before and after: what the server admitted, shed, and spent.
type MetricsDelta struct {
	Requests       float64            `json:"requests"`
	Errors         float64            `json:"errors"`
	Sheds          float64            `json:"sheds"`
	ShedRate       float64            `json:"shed_rate"`
	Compdists      float64            `json:"compdists"`
	CompdistsPerOp float64            `json:"compdists_per_op"`
	CacheHits      float64            `json:"cache_hits"`
	PlanStrategies map[string]float64 `json:"plan_strategies"`
}

type workload struct {
	base   string
	client *http.Client
	pool   []json.RawMessage
	radius float64
	k      int

	filtered float64
	writes   float64
	knnFrac  float64
	zipfS    float64
	battery  []string
}

type localStats struct {
	lat         []int64 // successful request latencies, micros
	ops         int64
	errors      int64
	sheds       int64
	filteredOps int64
	inserts     int64
	strategies  map[string]int64
}

func runStep(cfg workload, conc int, dur time.Duration, seed int64) StepResult {
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	start := time.Now()
	locals := make([]localStats, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(ctx, cfg, seed+int64(w), &locals[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := StepResult{Concurrency: conc, DurationS: elapsed, Strategies: map[string]int64{}}
	var all []int64
	for i := range locals {
		l := &locals[i]
		res.Ops += l.ops
		res.Errors += l.errors
		res.Sheds += l.sheds
		res.FilteredOps += l.filteredOps
		res.Inserts += l.inserts
		for s, n := range l.strategies {
			res.Strategies[s] += n
		}
		all = append(all, l.lat...)
	}
	res.QPS = float64(res.Ops) / elapsed
	res.P50Micros, res.P95Micros, res.P99Micros = percentiles(all)
	return res
}

func worker(ctx context.Context, cfg workload, seed int64, st *localStats) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(cfg.pool)-1))
	st.strategies = map[string]int64{}
	for i := 0; ctx.Err() == nil; i++ {
		var (
			status   int
			strategy string
			err      error
		)
		begin := time.Now()
		switch {
		case rng.Float64() < cfg.writes:
			st.inserts++
			status, err = doInsert(ctx, cfg, rng, seed, i)
		default:
			q := cfg.pool[zipf.Uint64()]
			filter := ""
			if rng.Float64() < cfg.filtered {
				filter = cfg.battery[rng.Intn(len(cfg.battery))]
				st.filteredOps++
			}
			if rng.Float64() < cfg.knnFrac {
				status, strategy, err = doKNN(ctx, cfg, q, filter)
			} else {
				status, strategy, err = doRange(ctx, cfg, q, filter)
			}
		}
		st.ops++
		switch {
		case err != nil && ctx.Err() != nil:
			// The deadline tore down an in-flight request; not a failure.
			st.ops--
			return
		case err != nil:
			st.errors++
		case status == http.StatusTooManyRequests:
			st.sheds++
		case status != http.StatusOK:
			st.errors++
		default:
			st.lat = append(st.lat, time.Since(begin).Microseconds())
			if strategy != "" {
				st.strategies[strategy]++
			}
		}
	}
}

func doRange(ctx context.Context, cfg workload, q json.RawMessage, filter string) (int, string, error) {
	var resp server.RangeResponse
	status, err := post(ctx, cfg, "/v1/range", server.RangeRequest{Query: q, Radius: cfg.radius, Filter: filter}, &resp)
	return status, resp.Strategy, err
}

func doKNN(ctx context.Context, cfg workload, q json.RawMessage, filter string) (int, string, error) {
	var resp server.KNNResponse
	status, err := post(ctx, cfg, "/v1/knn", server.KNNRequest{Query: q, K: cfg.k, Filter: filter}, &resp)
	return status, resp.Strategy, err
}

func doInsert(ctx context.Context, cfg workload, rng *rand.Rand, seed int64, i int) (int, error) {
	obj := cfg.pool[rng.Intn(len(cfg.pool))]
	attrs := json.RawMessage(fmt.Sprintf(
		`{"category": "loadgen", "stock": %d, "price": %g}`, rng.Intn(100), 20*rng.Float64()+1))
	var resp server.InsertResponse
	return post(ctx, cfg, "/v1/insert", server.InsertRequest{Object: obj, Attrs: attrs}, &resp)
}

func post(ctx context.Context, cfg workload, path string, body, into any) (int, error) {
	enc, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.base+path, bytes.NewReader(enc))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, into); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// queryPool encodes the held-out query objects (falling back to live
// dataset objects) into wire form once, up front.
func queryPool(gen *dataset.Generated) []json.RawMessage {
	objs := gen.Queries
	if len(objs) == 0 {
		ds := gen.Dataset
		for _, id := range ds.LiveIDs() {
			objs = append(objs, ds.Object(id))
			if len(objs) == 1024 {
				break
			}
		}
	}
	pool := make([]json.RawMessage, 0, len(objs))
	for _, o := range objs {
		var enc []byte
		var err error
		switch v := o.(type) {
		case core.Word:
			enc, err = json.Marshal(string(v))
		default:
			enc, err = json.Marshal(v)
		}
		if err == nil {
			pool = append(pool, enc)
		}
	}
	return pool
}

// calibrateRadius picks a range radius from sampled pairwise distances:
// the 5th percentile, so range answers are selective but rarely empty.
func calibrateRadius(gen *dataset.Generated, seed int64) float64 {
	ds := gen.Dataset
	ids := ds.LiveIDs()
	if len(ids) < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := 2000
	dists := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		if a == b {
			continue
		}
		dists = append(dists, ds.Distance(a, b))
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	return dists[len(dists)/20]
}

func parseRamp(s string) ([]int, error) {
	var steps []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("bad ramp step %q", part)
		}
		steps = append(steps, c)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("empty ramp")
	}
	return steps, nil
}

func parseFilters(s string) ([]string, error) {
	var battery []string
	for _, part := range strings.Split(s, ";") {
		if f := strings.TrimSpace(part); f != "" {
			battery = append(battery, f)
		}
	}
	if len(battery) == 0 {
		return nil, fmt.Errorf("empty filter battery")
	}
	return battery, nil
}

func percentiles(lat []int64) (p50, p95, p99 int64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

func waitHealthy(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("healthz did not turn OK within %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// scrapeMetrics parses the Prometheus text exposition into a flat
// map keyed by "name{labels}" (or bare name).
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, nil
}

// sumSeries adds every series of a metric across its label sets.
func sumSeries(m map[string]float64, name string) float64 {
	total := 0.0
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

func metricsDelta(prev, cur map[string]float64, ops int64) *MetricsDelta {
	d := &MetricsDelta{PlanStrategies: map[string]float64{}}
	delta := func(name string) float64 { return sumSeries(cur, name) - sumSeries(prev, name) }
	d.Requests = delta("mx_server_requests_total")
	d.Errors = delta("mx_server_errors_total")
	d.Sheds = delta("mx_server_sheds_total")
	d.Compdists = delta("mx_compdists_total")
	d.CacheHits = delta("mx_cache_hits_total")
	if admitted := d.Requests + d.Sheds; admitted > 0 {
		d.ShedRate = d.Sheds / admitted
	}
	if ops > 0 {
		d.CompdistsPerOp = d.Compdists / float64(ops)
	}
	for _, s := range []string{"pre", "probe", "post"} {
		key := fmt.Sprintf(`mx_plan_strategy_total{strategy="%s"}`, s)
		d.PlanStrategies[s] = cur[key] - prev[key]
	}
	return d
}
