package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/epoch"
	"metricindex/internal/obs"
	"metricindex/internal/persist"
	"metricindex/internal/server"
)

// durable owns mserve's persistence state: the snapshot file, the
// write-ahead log, and the counters /v1/stats reports. File formats are
// specified in docs/PERSISTENCE.md.
type durable struct {
	dir      string
	snapPath string
	walPath  string
	mode     persist.SyncMode
	wal      *persist.WAL
	restored bool

	mu        sync.Mutex
	snapEpoch uint64
	snapBytes int64

	// Push instruments: the WAL handles are installed on every WAL this
	// durable opens (restore and attach both go through them), the
	// snapshot pair is driven by checkpointLive. The pull-based gauges
	// (snapshot epoch/bytes, WAL record/byte backlog) are registered by
	// the server from its PersistStats hook.
	walObs    *persist.WALObs
	snapshots *obs.Counter
	snapTime  *obs.Histogram
}

func newDurable(dir string, mode persist.SyncMode, reg *obs.Registry) *durable {
	return &durable{
		dir:      dir,
		snapPath: filepath.Join(dir, "snapshot.mxs"),
		walPath:  filepath.Join(dir, "wal.mxl"),
		mode:     mode,
		walObs: &persist.WALObs{
			Appends: reg.Counter("mx_persist_wal_appends_total",
				"Write-ahead log records appended (committed writes)."),
			AppendBytes: reg.Counter("mx_persist_wal_append_bytes_total",
				"Bytes of WAL frames appended."),
			FsyncSeconds: reg.Histogram("mx_persist_wal_fsync_seconds",
				"Duration of WAL fsync calls.",
				obs.DefLatencyBuckets),
		},
		snapshots: reg.Counter("mx_persist_snapshots_total",
			"Snapshots written (initial build plus one per swap)."),
		snapTime: reg.Histogram("mx_persist_snapshot_seconds",
			"Duration of snapshot encode + atomic save.",
			obs.DefLatencyBuckets),
	}
}

// restore loads the snapshot (if present), replays the WAL over it at
// exact epochs, and attaches the WAL as the live journal. It returns
// (nil, nil) when no snapshot exists and (nil, nil) with a printed
// warning when the snapshot belongs to a different metric than the
// served dataset — both mean "build fresh, then call attach".
func (d *durable) restore(wantMetric string) (*epoch.Live, error) {
	if _, err := os.Stat(d.snapPath); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	live, snap, err := persist.OpenLive(d.snapPath)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", d.snapPath, err)
	}
	if snap.Metric != wantMetric {
		fmt.Printf("snapshot %s indexes metric %q but -data uses %q; rebuilding fresh\n",
			d.snapPath, snap.Metric, wantMetric)
		return nil, nil
	}
	if snap.Pager != nil {
		// Restored pagers come back with the buffer cache disabled.
		snap.Pager.SetCacheBytes(0)
	}
	wal, recs, torn, err := persist.OpenWAL(d.walPath, d.mode)
	if err != nil {
		return nil, fmt.Errorf("open WAL %s: %w", d.walPath, err)
	}
	if torn {
		fmt.Printf("WAL %s had a torn tail (crash mid-append); truncated to the last valid record\n", d.walPath)
	}
	applied, err := persist.Replay(live, recs)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("replay WAL %s: %w", d.walPath, err)
	}
	wal.SetObs(d.walObs)
	live.SetJournal(wal)
	d.wal = wal
	d.restored = true
	d.snapEpoch = snap.Epoch
	if fi, err := os.Stat(d.snapPath); err == nil {
		d.snapBytes = fi.Size()
	}
	fmt.Printf("restored %s from %s: snapshot at epoch %d + %d WAL records replayed → epoch %d (no rebuild)\n",
		snap.Kind, d.dir, snap.Epoch, applied, live.Epoch())
	return live, nil
}

// attach makes a freshly built live durable: write the initial snapshot,
// start a clean WAL (any stale log from a discarded snapshot is removed),
// and attach it as the journal.
func (d *durable) attach(live *epoch.Live) error {
	if err := d.checkpointLive(live); err != nil {
		return fmt.Errorf("initial snapshot: %w", err)
	}
	if err := os.Remove(d.walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	wal, _, _, err := persist.OpenWAL(d.walPath, d.mode)
	if err != nil {
		return fmt.Errorf("open WAL %s: %w", d.walPath, err)
	}
	wal.SetObs(d.walObs)
	live.SetJournal(wal)
	d.wal = wal
	fmt.Printf("durable: snapshot at %s (epoch %d), WAL at %s (fsync %s)\n",
		d.snapPath, d.snapEpoch, d.walPath, d.mode)
	return nil
}

// checkpointLive snapshots the live state atomically and records the
// captured epoch and image size.
func (d *durable) checkpointLive(live *epoch.Live) error {
	start := time.Now()
	var ep uint64
	var data []byte
	err := live.Snapshot(func(ds *core.Dataset, idx core.Index, e uint64) error {
		var err error
		data, err = persist.Encode(ds, idx, e)
		ep = e
		return err
	})
	if err != nil {
		return err
	}
	if err := persist.SaveFile(d.snapPath, data); err != nil {
		return err
	}
	d.snapshots.Inc()
	d.snapTime.Observe(time.Since(start).Seconds())
	d.mu.Lock()
	d.snapEpoch = ep
	d.snapBytes = int64(len(data))
	d.mu.Unlock()
	return nil
}

// afterSwap is the server's post-swap durability hook: re-snapshot the
// fresh structure, then drop the WAL records the snapshot made redundant.
func (d *durable) afterSwap(live *epoch.Live) func(epoch uint64) error {
	return func(uint64) error {
		if err := d.checkpointLive(live); err != nil {
			return err
		}
		d.mu.Lock()
		ep := d.snapEpoch
		d.mu.Unlock()
		return d.wal.TruncateThrough(ep)
	}
}

// stats supplies the /v1/stats persistence block.
func (d *durable) stats() server.PersistenceStats {
	d.mu.Lock()
	ep, bytes := d.snapEpoch, d.snapBytes
	d.mu.Unlock()
	ws := d.wal.Stats()
	return server.PersistenceStats{
		Enabled:       true,
		Dir:           d.dir,
		Restored:      d.restored,
		SnapshotEpoch: ep,
		SnapshotBytes: bytes,
		WALRecords:    ws.Records,
		WALBytes:      ws.Bytes,
		Fsync:         ws.Mode.String(),
	}
}

// close flushes and closes the WAL on shutdown.
func (d *durable) close() {
	if d.wal != nil {
		_ = d.wal.Close()
	}
}
