// Command mserve is the long-lived query service: it builds a chosen
// pivot-based metric index over a dataset file (written by datagen),
// optionally sharded, and serves it over HTTP/JSON with
// epoch-synchronized updates, admission control, per-client statistics,
// and graceful index swap (POST /v1/swap rebuilds in the background with
// fresh pivots and cuts over atomically under load).
//
// Usage:
//
//	datagen -kind Words -n 20000 -out words.midx
//	mserve -data words.midx -index SPB-tree -addr :8080
//	mserve -data words.midx -index LAESA -shards 4 -workers -1
//	mserve -data words.midx -index MVPT -smoke        # self-test all endpoints
//	mserve -data words.midx -index MVPT -data-dir ./state   # durable: snapshot + WAL
//
// With -data-dir the server is durable: the built index is snapshotted
// to <dir>/snapshot.mxs, every committed write is appended to
// <dir>/wal.mxl before it is acknowledged, and a restart restores the
// exact pre-crash state — snapshot load, WAL replay at exact epochs, no
// rebuild (formats: docs/PERSISTENCE.md).
//
// Endpoints: POST /v1/range, /v1/knn, /v1/batch, /v1/insert,
// /v1/delete, /v1/swap; GET /v1/stats, /healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metricindex/internal/bench"
	"metricindex/internal/cache"
	"metricindex/internal/core"
	"metricindex/internal/dataset"
	"metricindex/internal/epoch"
	"metricindex/internal/obs"
	"metricindex/internal/persist"
	"metricindex/internal/server"
)

func main() {
	var (
		data           = flag.String("data", "", "dataset file from datagen (required)")
		index          = flag.String("index", "SPB-tree", "index: LAESA, EPT, EPT*, CPT, BKT, FQT, MVPT, PM-tree, OmniR-tree, M-index, M-index*, SPB-tree")
		pivots         = flag.Int("pivots", 5, "number of pivots |P|")
		shards         = flag.Int("shards", 0, "partition the dataset across this many sub-indexes (0/1 = unsharded)")
		workers        = flag.Int("workers", -1, "batch engine and build parallelism (-1 = GOMAXPROCS)")
		addr           = flag.String("addr", ":8080", "listen address")
		inflight       = flag.Int("max-inflight", 0, "admission: max concurrently executing requests (0 = 4×GOMAXPROCS)")
		queue          = flag.Int("max-queue", 0, "admission: max requests waiting for a slot (0 = 4×max-inflight)")
		cacheMB        = flag.Int("cache-mb", 64, "epoch-keyed answer cache budget in MB; hot queries are served memoized until the next committed write (0 disables)")
		smoke          = flag.Bool("smoke", false, "boot on a loopback port, exercise every endpoint plus a live swap against a linear scan, and exit")
		dataDir        = flag.String("data-dir", "", "durability directory: snapshot.mxs + wal.mxl live here; boot restores from them, every committed write is logged, every swap re-snapshots (empty = volatile)")
		fsync          = flag.String("fsync", "interval", "WAL fsync policy: always (per append), interval (background 200ms), off")
		requireRestore = flag.Bool("require-restore", false, "fail the boot unless the state was restored from -data-dir (no fresh build) — used by the restart smoke leg")
		metrics        = flag.Bool("metrics", true, "expose Prometheus text metrics at GET /metrics")
		pprofOn        = flag.Bool("pprof", false, "mount net/http/pprof under GET /debug/pprof/")
		slowQueryMS    = flag.Int("slow-query-ms", 0, "log any request slower than this many milliseconds with its compdists and page accesses (0 disables)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "missing -data; generate one with datagen")
		os.Exit(2)
	}

	gen, err := dataset.Load(*data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %s: %d objects (%s), %d queries\n",
		*data, gen.Dataset.Count(), gen.Dataset.Space().Metric().Name(), len(gen.Queries))

	cfg := bench.Config{
		N: gen.Dataset.Count(), Queries: len(gen.Queries),
		Pivots: *pivots, Shards: *shards, Workers: *workers,
	}.WithDefaults()
	env := &bench.Env{Cfg: cfg, Gen: gen}
	if env.Pivots, err = bench.SelectHFI(gen.Dataset, cfg.Pivots, cfg.Seed+1); err != nil {
		fail(err)
	}
	builder, err := bench.BuilderByName(*index)
	if err != nil {
		fail(err)
	}
	if builder.DiscreteOnly && !env.Discrete() {
		fail(fmt.Errorf("%s requires a discrete metric; %s is continuous",
			*index, gen.Dataset.Space().Metric().Name()))
	}

	// One registry for the whole process: the server registers every
	// layer's instruments on it, and durable adds the persistence push
	// handles (WAL append/fsync, snapshot timers) as they come online.
	reg := obs.NewRegistry()

	var dur *durable
	if *dataDir != "" {
		if cfg.Shards > 1 {
			fail(fmt.Errorf("-data-dir does not support -shards > 1 (sharded fronts have no snapshot format yet)"))
		}
		mode, err := persist.ParseSyncMode(*fsync)
		if err != nil {
			fail(err)
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fail(err)
		}
		dur = newDurable(*dataDir, mode, reg)
	}

	var live *epoch.Live
	if dur != nil {
		restored, err := dur.restore(gen.Dataset.Space().Metric().Name())
		if err != nil {
			fail(err)
		}
		live = restored
	}
	if live == nil {
		if *requireRestore {
			fail(errors.New("-require-restore: no usable snapshot in " + *dataDir))
		}
		built, cost, err := bench.MeasureBuild(env, builder)
		if err != nil {
			fail(err)
		}
		fmt.Printf("built %s in %v: %d compdists, %d KB memory, %d KB disk\n",
			built.Index.Name(), cost.Time.Round(time.Millisecond),
			cost.CompDists, cost.MemBytes/1024, cost.DiskBytes/1024)
		live = epoch.NewLive(gen.Dataset, built.Index)
		if dur != nil {
			if err := dur.attach(live); err != nil {
				fail(err)
			}
		}
	}
	defer func() {
		if dur != nil {
			dur.close()
		}
	}()
	// The swap rebuild re-runs the same builder (re-sharded if sharded)
	// over the drifted live dataset, with fresh HFI pivots selected on it.
	rebuild := func(ds *core.Dataset) (core.Index, error) {
		renv, err := env.WithDataset(ds)
		if err != nil {
			return nil, err
		}
		b := builder
		if renv.Cfg.Shards > 1 {
			b = bench.ShardedBuilder(builder, renv.Cfg.Shards)
		}
		rebuilt, err := b.Build(renv)
		if err != nil {
			return nil, err
		}
		return rebuilt.Index, nil
	}
	sopts := server.Options{
		MaxInFlight: *inflight, MaxQueue: *queue,
		Workers: cfg.Workers, Builder: rebuild,
		Obs:            reg,
		DisableMetrics: !*metrics,
		PProf:          *pprofOn,
	}
	if *slowQueryMS > 0 {
		sopts.SlowQueryThreshold = time.Duration(*slowQueryMS) * time.Millisecond
	}
	if dur != nil {
		// Snapshot-on-swap: each graceful rebuild re-snapshots the fresh
		// structure and truncates the now-redundant WAL prefix.
		sopts.AfterSwap = dur.afterSwap(live)
		sopts.PersistStats = dur.stats
	}
	if *cacheMB > 0 {
		sopts.Cache = &cache.Options{MaxBytes: int64(*cacheMB) << 20}
		fmt.Printf("answer cache: %d MB, epoch-keyed\n", *cacheMB)
	}
	srv, err := server.New(live, sopts)
	if err != nil {
		fail(err)
	}

	if *smoke {
		if err := runSmoke(srv, live, gen, *metrics); err != nil {
			fail(fmt.Errorf("smoke: %w", err))
		}
		fmt.Println("smoke: all endpoints verified ✓")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving %s on %s\n", live.Name(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil {
			fail(err)
		}
	case <-ctx.Done():
		fmt.Println("\nshutting down…")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mserve:", err)
	os.Exit(1)
}
