package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metricindex/internal/core"
	"metricindex/internal/dataset"
	"metricindex/internal/epoch"
	"metricindex/internal/obs"
	"metricindex/internal/plan"
	"metricindex/internal/server"
)

// runSmoke boots the server on a loopback port and exercises every
// endpoint from a real HTTP client, verifying each answer two ways:
// byte-for-byte against the direct call on the live index (the server
// adds transport, never approximation) and against a brute-force linear
// scan of the current dataset (the same check msearch -verify runs). It
// finishes with a graceful swap under sustained query load that must
// drop zero requests and corrupt zero answers, then scrapes GET /metrics
// and validates the exposition covers every instrumented subsystem.
func runSmoke(srv *server.Server, live *epoch.Live, gen *dataset.Generated, metricsOn bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() {
		ctx, cancel := contextWithTimeout()
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	var health server.HealthResponse
	if err := call(base+"/healthz", nil, &health); err != nil {
		return err
	}
	if health.Status != "ok" {
		return fmt.Errorf("healthz: %+v", health)
	}
	fmt.Printf("smoke: serving %s at %s\n", health.Index, base)

	radius := dataset.CalibrateRadius(gen, 0.05)
	const k = 10

	// Single-query endpoints, every workload query.
	for qi, q := range gen.Queries {
		raw, err := json.Marshal(q)
		if err != nil {
			return err
		}
		var rr server.RangeResponse
		if err := call(base+"/v1/range", server.RangeRequest{Query: raw, Radius: radius}, &rr); err != nil {
			return fmt.Errorf("query %d: %w", qi, err)
		}
		if err := verifyRange(live, q, radius, rr.IDs); err != nil {
			return fmt.Errorf("query %d range: %w", qi, err)
		}
		var kr server.KNNResponse
		if err := call(base+"/v1/knn", server.KNNRequest{Query: raw, K: k}, &kr); err != nil {
			return fmt.Errorf("query %d: %w", qi, err)
		}
		if err := verifyKNN(live, q, k, kr.Neighbors); err != nil {
			return fmt.Errorf("query %d knn: %w", qi, err)
		}
	}
	fmt.Printf("smoke: %d range + %d knn answers equal direct calls and linear scan ✓\n",
		len(gen.Queries), len(gen.Queries))

	// Batch endpoint, both workload types in one round trip each.
	raws := make([]json.RawMessage, len(gen.Queries))
	for i, q := range gen.Queries {
		if raws[i], err = json.Marshal(q); err != nil {
			return err
		}
	}
	var br server.BatchResponse
	if err := call(base+"/v1/batch", server.BatchRequest{Type: "range", Queries: raws, Radius: radius}, &br); err != nil {
		return fmt.Errorf("batch range: %w", err)
	}
	for i, ids := range br.IDs {
		if err := verifyRange(live, gen.Queries[i], radius, ids); err != nil {
			return fmt.Errorf("batch range %d: %w", i, err)
		}
	}
	if err := call(base+"/v1/batch", server.BatchRequest{Type: "knn", Queries: raws, K: k}, &br); err != nil {
		return fmt.Errorf("batch knn: %w", err)
	}
	for i, nns := range br.Neighbors {
		if err := verifyKNN(live, gen.Queries[i], k, nns); err != nil {
			return fmt.Errorf("batch knn %d: %w", i, err)
		}
	}
	if br.Stats.Queries != len(gen.Queries) || br.Stats.P50Micros < 0 {
		return fmt.Errorf("batch stats malformed: %+v", br.Stats)
	}
	_, cacheOn := live.CacheStats()
	if cacheOn {
		// The batch repeated the single-query leg's knn workload at the
		// same epoch, so the answer cache must have served it before
		// dispatch — and still byte-identically (verified above).
		if br.Stats.CacheHits == 0 {
			return fmt.Errorf("batch repeated a cached workload but reported zero cache hits: %+v", br.Stats)
		}
		fmt.Printf("smoke: repeated batch served from answer cache (%d/%d hits) ✓\n",
			br.Stats.CacheHits, br.Stats.Queries)
	}
	fmt.Printf("smoke: batch endpoint verified over %d queries (p50 %dµs, p99 %dµs, %.0f q/s) ✓\n",
		br.Stats.Queries, br.Stats.P50Micros, br.Stats.P99Micros, br.Stats.QPS)

	// Insert/delete round trip through the API.
	obj, err := json.Marshal(gen.Queries[0])
	if err != nil {
		return err
	}
	var ir server.InsertResponse
	if err := call(base+"/v1/insert", server.InsertRequest{Object: obj}, &ir); err != nil {
		return fmt.Errorf("insert: %w", err)
	}
	var rr server.RangeResponse
	if err := call(base+"/v1/range", server.RangeRequest{Query: obj, Radius: 0}, &rr); err != nil {
		return err
	}
	if !contains(rr.IDs, ir.ID) {
		return fmt.Errorf("inserted object %d not served: got %v", ir.ID, rr.IDs)
	}
	if err := call(base+"/v1/delete", server.DeleteRequest{ID: ir.ID}, &server.DeleteResponse{}); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	if err := call(base+"/v1/range", server.RangeRequest{Query: obj, Radius: 0}, &rr); err != nil {
		return err
	}
	if contains(rr.IDs, ir.ID) {
		return fmt.Errorf("deleted object %d still served", ir.ID)
	}
	fmt.Println("smoke: insert/delete round trip ✓")

	// Filtered (hybrid) search: attach attribute bags over the wire,
	// then filtered range and knn answers must equal the brute-force
	// filter-then-scan, and the response must name the plan strategy.
	if err := smokeFiltered(base, live, gen, radius, k); err != nil {
		return fmt.Errorf("filtered: %w", err)
	}
	fmt.Println("smoke: filtered search verified against filter-then-scan ✓")

	// Traced query: the span timeline must cover the request's whole
	// path, and tracing must not change the answer. The insert/delete
	// above bumped the epoch, so this traced query misses the answer
	// cache and exercises the full read-section pipeline.
	sharded := len(live.Name()) > len("Sharded[") && live.Name()[:len("Sharded[")] == "Sharded["
	var traced server.KNNResponse
	if err := call(base+"/v1/knn", server.KNNRequest{Query: raws[0], K: k, Trace: true}, &traced); err != nil {
		return fmt.Errorf("traced knn: %w", err)
	}
	if traced.Trace == nil || len(traced.Trace.Spans) == 0 {
		return fmt.Errorf("traced knn returned no trace")
	}
	spanNames := map[string]bool{}
	var readSection *obs.Span
	for i := range traced.Trace.Spans {
		sp := &traced.Trace.Spans[i]
		spanNames[sp.Name] = true
		if sp.Name == "read_section" {
			readSection = sp
		}
	}
	for _, want := range []string{"admission_wait", "decode", "read_section", "encode"} {
		if !spanNames[want] {
			return fmt.Errorf("trace missing %q span: have %v", want, traced.Trace.Spans)
		}
	}
	if cacheOn && !spanNames["cache_probe"] {
		return fmt.Errorf("cache enabled but trace has no cache_probe span")
	}
	if sharded {
		if !spanNames["probe_shard0"] || !spanNames["merge"] {
			return fmt.Errorf("sharded front but trace has no per-shard probe/merge spans: %v", traced.Trace.Spans)
		}
	}
	if readSection != nil && readSection.CompDists <= 0 {
		return fmt.Errorf("traced uncached query reported %d compdists in its read section", readSection.CompDists)
	}
	var untraced server.KNNResponse
	if err := call(base+"/v1/knn", server.KNNRequest{Query: raws[0], K: k}, &untraced); err != nil {
		return err
	}
	if err := sameNeighbors(traced.Neighbors, untraced.Neighbors); err != nil {
		return fmt.Errorf("tracing changed the answer: %w", err)
	}
	fmt.Printf("smoke: traced query — %d spans over %dµs, answer unchanged ✓\n",
		len(traced.Trace.Spans), traced.Trace.TotalMicros)

	// Graceful swap under sustained query load: zero dropped, zero wrong.
	var (
		wg     sync.WaitGroup
		stop   atomic.Bool
		failed atomic.Int64
		served atomic.Int64
	)
	knnBody, err := json.Marshal(server.KNNRequest{Query: raws[0], K: k})
	if err != nil {
		return err
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Post(base+"/v1/knn", "application/json", bytes.NewReader(knnBody))
				if err != nil {
					failed.Add(1)
					return
				}
				var kr server.KNNResponse
				decErr := json.NewDecoder(resp.Body).Decode(&kr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil || len(kr.Neighbors) != k {
					failed.Add(1)
					return
				}
				served.Add(1)
			}
		}()
	}
	var sw server.SwapResponse
	swapErr := call(base+"/v1/swap", struct{}{}, &sw)
	stop.Store(true)
	wg.Wait()
	if swapErr != nil {
		return fmt.Errorf("swap: %w", swapErr)
	}
	if failed.Load() != 0 {
		return fmt.Errorf("swap under load: %d of %d queries failed", failed.Load(), failed.Load()+served.Load())
	}
	if err := verifyKNNDirect(live, gen.Queries[0], k); err != nil {
		return fmt.Errorf("post-swap: %w", err)
	}
	// Served answers after the cutover must come from the new structure:
	// the swap bumped the epoch, so no pre-swap cache entry may surface.
	var postSwap server.KNNResponse
	if err := call(base+"/v1/knn", server.KNNRequest{Query: raws[0], K: k}, &postSwap); err != nil {
		return fmt.Errorf("post-swap knn: %w", err)
	}
	if postSwap.Epoch < sw.Epoch {
		return fmt.Errorf("post-swap answer at epoch %d predates the swap commit %d", postSwap.Epoch, sw.Epoch)
	}
	if err := verifyKNN(live, gen.Queries[0], k, postSwap.Neighbors); err != nil {
		return fmt.Errorf("post-swap served answer: %w", err)
	}
	fmt.Printf("smoke: graceful swap rebuilt in %dms with %d queries in flight, zero dropped ✓\n",
		sw.BuildMillis, served.Load())

	// Statistics reflect everything above.
	var st server.StatsResponse
	if err := call(base+"/v1/stats", nil, &st); err != nil {
		return err
	}
	knnStats := st.Endpoints["knn"]
	if knnStats.Count == 0 || knnStats.P50Micros <= 0 || st.Admission.Admitted == 0 {
		return fmt.Errorf("stats malformed: %+v", st)
	}
	if st.Index.Epoch != sw.Epoch {
		return fmt.Errorf("stats epoch %d, swap reported %d", st.Index.Epoch, sw.Epoch)
	}
	if cacheOn {
		// The repeated-query legs (batch replay, swap-under-load hammering
		// one query) must have produced real hits.
		if !st.Cache.Enabled || st.Cache.Hits == 0 {
			return fmt.Errorf("cache stats show no hits after repeated-query legs: %+v", st.Cache)
		}
		fmt.Printf("smoke: answer cache — %d hits, %d misses, %.0f%% hit rate, %d KB resident ✓\n",
			st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRate, st.Cache.Bytes/1024)
	}
	fmt.Printf("smoke: stats — %d admitted, knn p50 %dµs p99 %dµs, epoch %d\n",
		st.Admission.Admitted, knnStats.P50Micros, knnStats.P99Micros, st.Index.Epoch)

	// Metrics exposition: after everything above every subsystem has
	// traffic, so the scrape must parse as Prometheus text and carry at
	// least one family per layer.
	if metricsOn {
		if err := checkMetrics(base, sharded, st.Persistence.Enabled); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Println("smoke: /metrics exposition parses, every subsystem reporting ✓")
	}
	return nil
}

// smokeFiltered exercises the hybrid-search surface end to end: attach
// attribute bags through POST /v1/attrs, run filtered range/knn/batch
// queries, and verify every answer equals the brute-force
// filter-then-scan over the live dataset (the metamorphic relation the
// planner must preserve regardless of the strategy it picks).
func smokeFiltered(base string, live *epoch.Live, gen *dataset.Generated, radius float64, k int) error {
	// Attribute population: three categories round-robin plus a counter,
	// written over the wire so the endpoint itself is covered.
	cats := []string{"red", "green", "blue"}
	var tagged []int
	live.View(func(ds *core.Dataset, _ core.Index) { tagged = ds.LiveIDs() })
	if len(tagged) > 90 {
		tagged = tagged[:90]
	}
	for i, id := range tagged {
		bag, err := json.Marshal(map[string]any{"category": cats[i%3], "stock": i})
		if err != nil {
			return err
		}
		if err := call(base+"/v1/attrs", server.AttrsRequest{ID: id, Attrs: bag}, &server.AttrsResponse{}); err != nil {
			return fmt.Errorf("set attrs %d: %w", id, err)
		}
	}

	const filter = `category = "red" AND stock < 60`
	pred, err := plan.Parse(filter)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(gen.Queries[0])
	if err != nil {
		return err
	}

	var fr server.RangeResponse
	if err := call(base+"/v1/range", server.RangeRequest{Query: raw, Radius: radius, Filter: filter}, &fr); err != nil {
		return err
	}
	if fr.Strategy == "" {
		return fmt.Errorf("filtered range response carries no strategy")
	}
	var verr error
	live.View(func(ds *core.Dataset, _ core.Index) {
		m := ds.Space().Metric()
		var want []int
		for _, id := range ds.LiveIDs() {
			if pred.Eval(ds.Attrs(id)) && m.Distance(gen.Queries[0], ds.Object(id)) <= radius {
				want = append(want, id)
			}
		}
		if !sameIDs(fr.IDs, want) {
			verr = fmt.Errorf("filtered range served %v, filter-then-scan %v", fr.IDs, want)
		}
	})
	if verr != nil {
		return verr
	}

	var fk server.KNNResponse
	if err := call(base+"/v1/knn", server.KNNRequest{Query: raw, K: k, Filter: filter}, &fk); err != nil {
		return err
	}
	if fk.Strategy == "" {
		return fmt.Errorf("filtered knn response carries no strategy")
	}
	live.View(func(ds *core.Dataset, _ core.Index) {
		m := ds.Space().Metric()
		var want []server.Neighbor
		for _, id := range ds.LiveIDs() {
			if pred.Eval(ds.Attrs(id)) {
				want = append(want, server.Neighbor{ID: id, Dist: m.Distance(gen.Queries[0], ds.Object(id))})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].ID < want[j].ID
		})
		if len(want) > k {
			want = want[:k]
		}
		if verr = sameNeighbors(fk.Neighbors, want); verr != nil {
			verr = fmt.Errorf("filtered knn disagrees with filter-then-scan: %w", verr)
		}
	})
	if verr != nil {
		return verr
	}

	// Filtered batch: per-query plans must be reported, answers already
	// proven equal by construction (same path as the single queries).
	raws := make([]json.RawMessage, len(gen.Queries))
	for i, q := range gen.Queries {
		if raws[i], err = json.Marshal(q); err != nil {
			return err
		}
	}
	var fb server.BatchResponse
	if err := call(base+"/v1/batch", server.BatchRequest{Type: "knn", Queries: raws, K: k, Filter: filter}, &fb); err != nil {
		return err
	}
	if len(fb.Plans) != len(raws) {
		return fmt.Errorf("filtered batch reported %d plans for %d queries", len(fb.Plans), len(raws))
	}

	// Insert with an attribute bag: the new object must be reachable
	// through a filter that matches only it, then vanish on delete.
	bag, err := json.Marshal(map[string]any{"category": "smoke-insert"})
	if err != nil {
		return err
	}
	var ir server.InsertResponse
	if err := call(base+"/v1/insert", server.InsertRequest{Object: raw, Attrs: bag}, &ir); err != nil {
		return fmt.Errorf("insert with attrs: %w", err)
	}
	var only server.RangeResponse
	if err := call(base+"/v1/range",
		server.RangeRequest{Query: raw, Radius: radius, Filter: `category = "smoke-insert"`}, &only); err != nil {
		return err
	}
	if len(only.IDs) != 1 || only.IDs[0] != ir.ID {
		return fmt.Errorf("filter on inserted attrs served %v, want [%d]", only.IDs, ir.ID)
	}
	if err := call(base+"/v1/delete", server.DeleteRequest{ID: ir.ID}, &server.DeleteResponse{}); err != nil {
		return err
	}

	// A malformed filter is a client error, not a server failure.
	err = call(base+"/v1/range", server.RangeRequest{Query: raw, Radius: radius, Filter: "price <"}, &server.RangeResponse{})
	if err == nil || !strings.Contains(err.Error(), "status 400") {
		return fmt.Errorf("malformed filter: want status 400, got %v", err)
	}
	return nil
}

// checkMetrics scrapes GET /metrics, validates the Prometheus text
// exposition line by line, and requires one metric family per
// instrumented subsystem (plus the shard and persistence families when
// those layers are live).
func checkMetrics(base string, sharded, persistent bool) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}

	types := map[string]string{} // family -> counter|gauge|histogram
	values := map[string]float64{}
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			if _, dup := types[parts[2]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.Fields(line)) < 4 {
				return fmt.Errorf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value: %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value: %q", ln+1, line)
		}
		name := line[:sp]
		if br := strings.IndexByte(name, '{'); br >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = name[:br]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suf); ok && types[trimmed] == "histogram" {
				family = trimmed
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE", ln+1, name)
		}
		values[name] += val
	}

	required := []string{
		"mx_server_requests_total", "mx_server_request_seconds",
		"mx_server_admitted_total", "mx_server_queue_depth",
		"mx_compdists_total",
		"mx_index_epoch", "mx_index_objects",
		"mx_cache_hits_total", "mx_cache_entries",
		"mx_exec_batches_total", "mx_exec_batch_queries",
		"mx_epoch_swaps_total", "mx_epoch_write_wait_seconds",
		"mx_plan_strategy_total",
		"mx_store_page_reads_total", "mx_store_cache_hits_total",
	}
	if sharded {
		required = append(required, "mx_shard_probe_seconds")
	}
	if persistent {
		required = append(required,
			"mx_persist_snapshots_total", "mx_persist_snapshot_seconds",
			"mx_persist_wal_appends_total", "mx_persist_wal_fsync_seconds",
			"mx_persist_snapshot_epoch", "mx_persist_wal_records")
	}
	for _, fam := range required {
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("missing required family %s", fam)
		}
	}
	// The legs above issued requests, computed distances, ran a batch,
	// and committed a swap — the corresponding counters cannot be zero.
	for _, nonzero := range []string{
		"mx_server_admitted_total", "mx_compdists_total",
		"mx_exec_batches_total", "mx_epoch_swaps_total",
		"mx_plan_strategy_total",
		"mx_server_request_seconds_count",
	} {
		if values[nonzero] == 0 {
			return fmt.Errorf("%s is zero after the smoke workload", nonzero)
		}
	}
	if persistent && values["mx_persist_snapshots_total"]+values["mx_persist_wal_appends_total"] == 0 {
		return fmt.Errorf("persistence enabled but no snapshot or WAL activity recorded")
	}
	return nil
}

// sameNeighbors reports whether two served answers are element-wise
// identical.
func sameNeighbors(a, b []server.Neighbor) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d neighbors", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return fmt.Errorf("neighbor %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

// call POSTs body (or GETs when body is nil) and decodes into out,
// failing on any non-200.
func call(url string, body, out any) error {
	var resp *http.Response
	var err error
	if body == nil {
		resp, err = http.Get(url)
	} else {
		var raw []byte
		if raw, err = json.Marshal(body); err != nil {
			return err
		}
		resp, err = http.Post(url, "application/json", bytes.NewReader(raw))
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// verifyRange checks a served MRQ answer equals both the direct call and
// the linear scan over the current dataset.
func verifyRange(live *epoch.Live, q core.Object, r float64, got []int) error {
	var err error
	live.View(func(ds *core.Dataset, idx core.Index) {
		direct, derr := idx.RangeSearch(q, r)
		if derr != nil {
			err = derr
			return
		}
		if !sameIDs(got, direct) {
			err = fmt.Errorf("served %d ids, direct call %d", len(got), len(direct))
			return
		}
		want := core.BruteForceRange(ds, q, r)
		if !sameIDs(got, want) {
			err = fmt.Errorf("served %d ids, linear scan %d", len(got), len(want))
		}
	})
	return err
}

// verifyKNN checks a served MkNNQ answer equals the direct call
// element-wise and matches the linear scan on count and k-th distance.
func verifyKNN(live *epoch.Live, q core.Object, k int, got []server.Neighbor) error {
	var err error
	live.View(func(ds *core.Dataset, idx core.Index) {
		direct, derr := idx.KNNSearch(q, k)
		if derr != nil {
			err = derr
			return
		}
		if len(got) != len(direct) {
			err = fmt.Errorf("served %d neighbors, direct call %d", len(got), len(direct))
			return
		}
		for i := range got {
			if got[i].ID != direct[i].ID || got[i].Dist != direct[i].Dist {
				err = fmt.Errorf("neighbor %d: served %v, direct %v", i, got[i], direct[i])
				return
			}
		}
		want := core.BruteForceKNN(ds, q, k)
		if len(got) != len(want) || (len(want) > 0 && got[len(got)-1].Dist != want[len(want)-1].Dist) {
			err = fmt.Errorf("served answer disagrees with linear scan")
		}
	})
	return err
}

// verifyKNNDirect re-checks the live index against a quiesced scan.
func verifyKNNDirect(live *epoch.Live, q core.Object, k int) error {
	var err error
	live.View(func(ds *core.Dataset, idx core.Index) {
		got, derr := idx.KNNSearch(q, k)
		if derr != nil {
			err = derr
			return
		}
		want := core.BruteForceKNN(ds, q, k)
		if len(got) != len(want) || (len(want) > 0 && got[len(got)-1].Dist != want[len(want)-1].Dist) {
			err = fmt.Errorf("post-swap answer disagrees with linear scan")
		}
	})
	return err
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func contextWithTimeout() (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}
