// Command datagen generates the benchmark datasets (LA, Words, Color,
// Synthetic — §6.1 stand-ins, see DESIGN.md) and writes them in the
// library's binary format for use by msearch and external tooling.
//
// Usage:
//
//	datagen -kind LA -n 20000 -queries 100 -out la.midx
//	datagen -kind Words -n 5000 -out words.midx -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"metricindex/internal/dataset"
)

func main() {
	var (
		kind    = flag.String("kind", "LA", "dataset kind: LA, Words, Color, Synthetic")
		n       = flag.Int("n", 20000, "number of objects")
		queries = flag.Int("queries", 100, "number of held-out query objects")
		seed    = flag.Int64("seed", 42, "generation seed")
		out     = flag.String("out", "", "output file (default <kind>.midx)")
		attrs   = flag.Bool("attrs", false, "attach generated attribute bags (category/price/stock/tags) for filtered search; writes a MIDX2 file")
		stats   = flag.Bool("stats", false, "print Table 2 statistics (intrinsic dimensionality, d+)")
	)
	flag.Parse()

	gen, err := dataset.Generate(dataset.Kind(*kind), dataset.Config{N: *n, Queries: *queries, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *attrs {
		if err := dataset.AttachAttrs(gen, *seed+1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	path := *out
	if path == "" {
		path = *kind + ".midx"
	}
	if err := dataset.Save(path, gen); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d objects, %d queries, metric %s, d+ ~ %.1f\n",
		path, gen.Dataset.Count(), len(gen.Queries),
		gen.Dataset.Space().Metric().Name(), gen.MaxDistance)
	if *stats {
		fmt.Printf("intrinsic dimensionality (mu^2 / 2 sigma^2): %.2f\n",
			dataset.IntrinsicDimensionality(gen))
	}
}
