// Command experiments regenerates the tables and figures of "Pivot-based
// Metric Indexing: Experiments and Analyses" (PVLDB 2017) at configurable
// scale.
//
// Usage:
//
//	experiments -exp all                      # everything (slow)
//	experiments -exp table4 -n 20000          # construction costs
//	experiments -exp fig16 -datasets LA,Words # MRQ radius sweep
//	experiments -exp fig17 -n 5000 -queries 10
//
// Experiments: table4, table6, fig14, fig15, fig16, fig17, fig18,
// ablation-pivots, ablation-arity, ablation-sfc, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"metricindex/internal/bench"
	"metricindex/internal/dataset"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (table4, table6, fig14..fig18, ablation-pivots, ablation-arity, ablation-sfc, all)")
		n        = flag.Int("n", 20000, "dataset cardinality")
		queries  = flag.Int("queries", 20, "query objects averaged per measurement")
		pivots   = flag.Int("pivots", 5, "default number of pivots |P|")
		seed     = flag.Int64("seed", 42, "generation seed")
		datasets = flag.String("datasets", "", "comma-separated subset of LA,Words,Color,Synthetic (default all)")
		workers  = flag.Int("workers", 0, "run query workloads and every index construction (tables, trees, bulk loads) through this many concurrent workers (0 = sequential, -1 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "partition each dataset across this many sub-indexes and scatter-gather every query (0/1 = unsharded)")
	)
	flag.Parse()

	cfg := bench.Config{N: *n, Queries: *queries, Pivots: *pivots, Seed: *seed, Workers: *workers, Shards: *shards}
	if *datasets != "" {
		for _, name := range strings.Split(*datasets, ",") {
			cfg.Datasets = append(cfg.Datasets, dataset.Kind(strings.TrimSpace(name)))
		}
	}

	runners := map[string]func(io.Writer, bench.Config) error{
		"table4":          bench.Table4,
		"table6":          bench.Table6,
		"fig14":           bench.Fig14,
		"fig15":           bench.Fig15,
		"fig16":           bench.Fig16,
		"fig17":           bench.Fig17,
		"fig18":           bench.Fig18,
		"ablation-pivots": bench.AblationPivotSelection,
		"ablation-arity":  bench.AblationMVPTArity,
		"ablation-sfc":    bench.AblationSFC,
	}
	order := []string{
		"table4", "table6", "fig14", "fig15", "fig16", "fig17", "fig18",
		"ablation-pivots", "ablation-arity", "ablation-sfc",
	}

	var toRun []string
	if *exp == "all" {
		toRun = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or all\n", *exp, order)
			os.Exit(2)
		}
		toRun = []string{*exp}
	}
	for _, name := range toRun {
		if err := runners[name](os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
}
