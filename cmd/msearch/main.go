// Command msearch builds a chosen pivot-based metric index over a
// dataset file (written by datagen) and runs the query workload against
// it, printing per-query results and the paper's cost metrics.
//
// Usage:
//
//	datagen -kind Words -n 5000 -out words.midx
//	msearch -data words.midx -index SPB-tree -k 10
//	msearch -data words.midx -index MVPT -radius 2
//	msearch -data words.midx -index LAESA -k 5 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"metricindex/internal/bench"
	"metricindex/internal/core"
	"metricindex/internal/dataset"
	"metricindex/internal/exec"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file from datagen (required)")
		index   = flag.String("index", "SPB-tree", "index: LAESA, EPT, EPT*, CPT, BKT, FQT, MVPT, PM-tree, OmniR-tree, M-index, M-index*, SPB-tree")
		pivots  = flag.Int("pivots", 5, "number of pivots |P|")
		k       = flag.Int("k", 0, "run MkNNQ with this k")
		radius  = flag.Float64("radius", 0, "run MRQ with this radius")
		verify  = flag.Bool("verify", false, "check every answer against a linear scan")
		maxShow = flag.Int("show", 5, "results printed per query")
		workers = flag.Int("workers", 0, "build the index with this many parallel workers and answer the whole workload through the concurrent batch engine (0 = sequential build and per-query loop, -1 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "partition the dataset across this many sub-indexes and scatter-gather every query over them concurrently (0/1 = unsharded)")
		cacheMB = flag.Int("cache-mb", 0, "epoch-keyed answer cache budget in MB; repeated queries are served memoized (0 disables)")
		repeat  = flag.Int("repeat", 1, "passes over the workload (answers printed once); with -cache-mb, later passes demonstrate the hit path")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "missing -data; generate one with datagen")
		os.Exit(2)
	}
	if *k == 0 && *radius == 0 {
		*k = 10
	}

	gen, err := dataset.Load(*data)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %s: %d objects (%s), %d queries\n",
		*data, gen.Dataset.Count(), gen.Dataset.Space().Metric().Name(), len(gen.Queries))

	cfg := bench.Config{N: gen.Dataset.Count(), Queries: len(gen.Queries), Pivots: *pivots, Workers: *workers, Shards: *shards, CacheMB: *cacheMB}.WithDefaults()
	env := &bench.Env{Cfg: cfg, Gen: gen}
	pv, err := selectPivots(env)
	if err != nil {
		fail(err)
	}
	env.Pivots = pv

	builder, err := bench.BuilderByName(*index)
	if err != nil {
		fail(err)
	}
	if builder.DiscreteOnly && !env.Discrete() {
		fail(fmt.Errorf("%s requires a discrete metric; %s is continuous",
			*index, gen.Dataset.Space().Metric().Name()))
	}
	if *shards > 1 {
		fmt.Printf("building %s over %d pivots, sharded %d ways…\n", *index, *pivots, *shards)
	} else {
		fmt.Printf("building %s over %d pivots…\n", *index, *pivots)
	}
	built, cost, err := bench.MeasureBuild(env, builder)
	if err != nil {
		fail(err)
	}
	fmt.Printf("built in %v: %d compdists, %d PA, %d KB memory, %d KB disk\n\n",
		cost.Time.Round(time.Millisecond), cost.CompDists, cost.PA,
		cost.MemBytes/1024, cost.DiskBytes/1024)

	if *workers != 0 {
		if err := runBatch(gen, built, *k, *radius, *verify, *maxShow, *workers, *repeat); err != nil {
			fail(err)
		}
		printCacheStats(built)
		return
	}

	sp := gen.Dataset.Space()
	for qi, q := range gen.Queries {
		sp.ResetCompDists()
		built.Index.ResetStats()
		start := time.Now()
		var ids []int
		var nns []core.Neighbor
		if *k > 0 {
			nns, err = built.Index.KNNSearch(q, *k)
		} else {
			ids, err = built.Index.RangeSearch(q, *radius)
		}
		if err != nil {
			fail(err)
		}
		elapsed := time.Since(start)
		if *k > 0 {
			printKNN(qi, *k, *maxShow, nns)
		} else {
			printMRQ(qi, *radius, *maxShow, ids)
		}
		fmt.Printf("   [%d dists, %d PA, %v]\n", sp.CompDists(), built.Index.PageAccesses(), elapsed.Round(time.Microsecond))

		if *verify {
			if *k > 0 {
				err = verifyKNN(gen, qi, *k, nns)
			} else {
				err = verifyMRQ(gen, qi, *radius, ids)
			}
			if err != nil {
				fail(err)
			}
			fmt.Println("          verified against linear scan ✓")
		}
	}

	// Repeat passes re-run the whole workload without reprinting answers;
	// with -cache-mb they are served from the answer cache (watch the
	// dists column collapse to zero).
	for pass := 1; pass < *repeat; pass++ {
		sp.ResetCompDists()
		built.Index.ResetStats()
		allIDs := make([][]int, len(gen.Queries))
		allNNs := make([][]core.Neighbor, len(gen.Queries))
		start := time.Now()
		for qi, q := range gen.Queries {
			if *k > 0 {
				allNNs[qi], err = built.Index.KNNSearch(q, *k)
			} else {
				allIDs[qi], err = built.Index.RangeSearch(q, *radius)
			}
			if err != nil {
				fail(err)
			}
		}
		elapsed := time.Since(start)
		dists, pa := sp.CompDists(), built.Index.PageAccesses()
		if *verify { // brute-force scans, after the counters are read
			for qi := range gen.Queries {
				if *k > 0 {
					err = verifyKNN(gen, qi, *k, allNNs[qi])
				} else {
					err = verifyMRQ(gen, qi, *radius, allIDs[qi])
				}
				if err != nil {
					fail(fmt.Errorf("repeat pass %d: %w", pass+1, err))
				}
			}
		}
		fmt.Printf("\npass %d: %d queries in %v (%d dists, %d PA)\n",
			pass+1, len(gen.Queries), elapsed.Round(time.Microsecond), dists, pa)
	}
	printCacheStats(built)
}

// printCacheStats reports the answer cache's counters when -cache-mb
// enabled one.
func printCacheStats(built *bench.Built) {
	st, ok := built.CacheStats()
	if !ok {
		return
	}
	fmt.Printf("cache: %d served, %d computed, %.0f%% hit rate, %d KB resident\n",
		st.Hits+st.Collapsed, st.Misses, 100*st.HitRate(), st.Bytes/1024)
}

// printKNN prints one MkNNQ answer line without a trailing newline (the
// caller appends either per-query costs or a newline).
func printKNN(qi, k, maxShow int, nns []core.Neighbor) {
	fmt.Printf("query %d: MkNNQ(k=%d):", qi+1, k)
	for i, nb := range nns {
		if i == maxShow {
			fmt.Printf(" …%d more", len(nns)-i)
			break
		}
		fmt.Printf(" %d@%.3g", nb.ID, nb.Dist)
	}
}

// printMRQ prints one MRQ answer line without a trailing newline.
func printMRQ(qi int, radius float64, maxShow int, ids []int) {
	fmt.Printf("query %d: MRQ(r=%g): %d results:", qi+1, radius, len(ids))
	for i, id := range ids {
		if i == maxShow {
			fmt.Printf(" …%d more", len(ids)-i)
			break
		}
		fmt.Printf(" %d", id)
	}
}

// verifyKNN checks one MkNNQ answer against the brute-force baseline.
func verifyKNN(gen *dataset.Generated, qi, k int, nns []core.Neighbor) error {
	want := core.BruteForceKNN(gen.Dataset, gen.Queries[qi], k)
	if len(want) != len(nns) || (len(want) > 0 && want[len(want)-1].Dist != nns[len(nns)-1].Dist) {
		return fmt.Errorf("query %d: kNN mismatch vs linear scan", qi+1)
	}
	return nil
}

// verifyMRQ checks one MRQ answer against the brute-force baseline.
func verifyMRQ(gen *dataset.Generated, qi int, radius float64, ids []int) error {
	want := core.BruteForceRange(gen.Dataset, gen.Queries[qi], radius)
	if len(want) != len(ids) {
		return fmt.Errorf("query %d: MRQ mismatch vs linear scan (%d vs %d)", qi+1, len(ids), len(want))
	}
	return nil
}

// runBatch answers the whole workload through the concurrent batch engine
// and prints per-query answers plus aggregate batch stats. Repeat passes
// re-run the same batch; with an answer cache they are served before
// dispatch (Stats.CacheHits).
func runBatch(gen *dataset.Generated, built *bench.Built, k int, radius float64, verify bool, maxShow, workers, repeat int) error {
	eng := exec.New(gen.Dataset.Space(), exec.Options{Workers: workers})
	fmt.Printf("batch mode: %d queries across %d workers\n", len(gen.Queries), eng.Workers())
	ctx := context.Background()
	var stats exec.BatchStats
	if k > 0 {
		res, err := eng.BatchKNNSearch(ctx, built.Index, gen.Queries, k)
		if err != nil {
			return err
		}
		stats = res.Stats
		for qi, nns := range res.Neighbors {
			printKNN(qi, k, maxShow, nns)
			fmt.Println()
			if verify {
				if err := verifyKNN(gen, qi, k, nns); err != nil {
					return err
				}
			}
		}
	} else {
		res, err := eng.BatchRangeSearch(ctx, built.Index, gen.Queries, radius)
		if err != nil {
			return err
		}
		stats = res.Stats
		for qi, ids := range res.IDs {
			printMRQ(qi, radius, maxShow, ids)
			fmt.Println()
			if verify {
				if err := verifyMRQ(gen, qi, radius, ids); err != nil {
					return err
				}
			}
		}
	}
	if verify {
		fmt.Println("all answers verified against linear scan ✓")
	}
	fmt.Printf("\nbatch: %d queries in %v (%.0f q/s), %.0f dists/query, %.0f PA/query\n",
		stats.Queries, stats.Wall.Round(time.Microsecond), stats.Throughput(),
		stats.PerQueryCompDists(), stats.PerQueryPageAccesses())
	fmt.Printf("latency: p50 %v, p95 %v, p99 %v\n",
		stats.P50.Round(time.Microsecond), stats.P95.Round(time.Microsecond),
		stats.P99.Round(time.Microsecond))

	for pass := 1; pass < repeat; pass++ {
		var st exec.BatchStats
		if k > 0 {
			res, err := eng.BatchKNNSearch(ctx, built.Index, gen.Queries, k)
			if err != nil {
				return err
			}
			st = res.Stats
		} else {
			res, err := eng.BatchRangeSearch(ctx, built.Index, gen.Queries, radius)
			if err != nil {
				return err
			}
			st = res.Stats
		}
		fmt.Printf("pass %d: %d queries in %v (%.0f q/s), %d cache hits, %.0f dists/query\n",
			pass+1, st.Queries, st.Wall.Round(time.Microsecond), st.Throughput(),
			st.CacheHits, st.PerQueryCompDists())
	}
	return nil
}

func selectPivots(env *bench.Env) ([]int, error) {
	// Reuse the harness's HFI selection by building a throwaway env-like
	// call: bench.NewEnv would regenerate the dataset, so select directly.
	return bench.SelectHFI(env.Gen.Dataset, env.Cfg.Pivots, env.Cfg.Seed+1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "msearch:", err)
	os.Exit(1)
}
