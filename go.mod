module metricindex

go 1.24
