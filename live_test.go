package metricindex_test

// Public-API tests for the serving layer: the Live epoch-synchronized
// index front and the HTTP server around it.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"metricindex"
)

func laesaRebuild(ds *metricindex.Dataset) (metricindex.Index, error) {
	pv, err := metricindex.SelectPivots(ds, 4, 3)
	if err != nil {
		return nil, err
	}
	return metricindex.NewLAESA(ds, pv)
}

// TestLivePublicAPI drives concurrent searches, updates and a graceful
// swap through the public surface.
func TestLivePublicAPI(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 400, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := laesaRebuild(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	live := metricindex.NewLive(gen.Dataset, idx)

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := live.KNNSearch(gen.Queries[i%len(gen.Queries)], 5); err != nil {
					t.Errorf("KNNSearch: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := live.Remove(i); err != nil {
			t.Fatalf("Remove(%d): %v", i, err)
		}
		if _, err := live.Add(metricindex.Vector{float64(i), 0}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := live.Swap(laesaRebuild); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	wg.Wait()
	if live.Epoch() != 41 {
		t.Fatalf("epoch = %d, want 40 updates + 1 swap", live.Epoch())
	}

	// Post-swap answers equal brute force on the current dataset.
	live.View(func(ds *metricindex.Dataset, idx metricindex.Index) {
		q := gen.Queries[0]
		want := metricindex.BruteForceRange(ds, q, 30)
		got, err := idx.RangeSearch(q, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("post-swap MRQ mismatch: got %d ids, want %d", len(got), len(want))
		}
	})
}

// TestServerPublicAPI boots the HTTP layer through NewServer and
// round-trips a query and the stats endpoint.
func TestServerPublicAPI(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetWords, 300, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := laesaRebuild(gen.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	live := metricindex.NewLive(gen.Dataset, idx)
	srv, err := metricindex.NewServer(live, metricindex.ServerOptions{Builder: laesaRebuild})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"query": gen.Queries[0], "k": 5})
	resp, err := http.Post(ts.URL+"/v1/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var kr struct {
		Neighbors []struct {
			ID   int     `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want, err := live.KNNSearch(gen.Queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kr.Neighbors) != len(want) {
		t.Fatalf("server returned %d neighbors, direct call %d", len(kr.Neighbors), len(want))
	}
	for i := range want {
		if kr.Neighbors[i].ID != want[i].ID || kr.Neighbors[i].Dist != want[i].Dist {
			t.Fatalf("neighbor %d differs: got %+v want %+v", i, kr.Neighbors[i], want[i])
		}
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st metricindex.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Index.Name != "LAESA" || st.Endpoints["knn"].Count != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCachedLivePublicAPI drives the answer cache through the public
// surface: NewLive with CacheOptions, hit equivalence, zero compdists
// on hits, epoch invalidation on write, and CacheStats accounting.
func TestCachedLivePublicAPI(t *testing.T) {
	gen, err := metricindex.GenerateDataset(metricindex.DatasetLA, 500, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Dataset
	idx, err := laesaRebuild(ds)
	if err != nil {
		t.Fatal(err)
	}
	live := metricindex.NewLive(ds, idx, metricindex.CacheOptions{MaxBytes: 4 << 20})

	q := gen.Queries[0]
	cold, err := live.KNNSearch(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds.Space().ResetCompDists()
	hot, err := live.KNNSearch(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := ds.Space().CompDists(); n != 0 {
		t.Fatalf("hit computed %d distances", n)
	}
	if len(hot) != len(cold) {
		t.Fatalf("hit %d neighbors, fresh %d", len(hot), len(cold))
	}
	for i := range hot {
		if hot[i] != cold[i] {
			t.Fatalf("neighbor %d: hit %+v, fresh %+v", i, hot[i], cold[i])
		}
	}

	// A write invalidates; the inserted object must be served.
	id, err := live.Add(q)
	if err != nil {
		t.Fatal(err)
	}
	post, err := live.KNNSearch(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if post[0].ID != id || post[0].Dist != 0 {
		t.Fatalf("post-insert nearest %+v, want %d at 0", post[0], id)
	}

	st, ok := live.CacheStats()
	if !ok || st.Hits == 0 || st.Misses == 0 || st.HitRate() <= 0 {
		t.Fatalf("cache stats malformed: ok=%v %+v", ok, st)
	}

	// Without CacheOptions there is no cache.
	plain := metricindex.NewLive(ds, idx)
	if _, ok := plain.CacheStats(); ok {
		t.Fatal("uncached Live reported cache stats")
	}
}
